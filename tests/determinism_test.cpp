// Determinism guarantees under threading and reruns: identical conv/gemm
// outputs with 1 vs 8 workers, and identical pruning decisions
// (importance -> strategy -> surgeon) regardless of worker count, plus
// byte-identical reruns from the same seed. These pin the contract that
// the ROADMAP's parallel/batching/caching work must preserve.
#include <gtest/gtest.h>

#include <cstring>

#include "compile/compiler.h"
#include "core/importance.h"
#include "core/strategy.h"
#include "core/surgeon.h"
#include "data/synthetic.h"
#include "models/builders.h"
#include "nn/conv2d.h"
#include "tensor/gemm.h"
#include "tensor/gemm_tiled.h"
#include "tensor/parallel.h"
#include "test_util.h"
#include "verify/shape_sweep.h"

namespace capr {
namespace {

struct ThreadGuard {
  ~ThreadGuard() { set_num_threads(0); }
};

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

TEST(DeterminismTest, GemmIsBitwiseStableAcrossReruns) {
  const Tensor a = testing::random_tensor({17, 23}, 1);
  const Tensor b = testing::random_tensor({23, 9}, 2);
  const Tensor first = matmul(a, b);
  for (int run = 0; run < 3; ++run) {
    EXPECT_TRUE(bitwise_equal(matmul(a, b), first));
  }
}

TEST(DeterminismTest, ConvForwardAndInputGradAreBitwiseAcrossThreadCounts) {
  ThreadGuard guard;
  nn::Conv2d conv(3, 4, 3, 1, 1, true);
  Rng rng(5);
  rng.fill_uniform(conv.weight().value, -0.5f, 0.5f);
  rng.fill_uniform(conv.bias().value, -0.5f, 0.5f);
  const Tensor x = testing::random_tensor({8, 3, 7, 7}, 6);
  const Tensor go = testing::random_tensor({8, 4, 7, 7}, 7);

  set_num_threads(1);
  const Tensor y1 = conv.forward(x, true);
  const Tensor gx1 = conv.backward(go);

  set_num_threads(8);
  const Tensor y8 = conv.forward(x, true);
  const Tensor gx8 = conv.backward(go);

  // Disjoint per-image writes: bitwise, not merely close.
  EXPECT_TRUE(bitwise_equal(y8, y1));
  EXPECT_TRUE(bitwise_equal(gx8, gx1));
}

TEST(DeterminismTest, ConvSweepOneVsEightWorkers) {
  ThreadGuard guard;
  verify::SweepOptions opts;
  opts.configs = 50;
  opts.threads_high = 8;
  const verify::SweepResult r = verify::sweep_conv2d_determinism(opts);
  EXPECT_GE(r.configs_run, 50);
  EXPECT_TRUE(r.ok()) << r.first_failure;
}

TEST(DeterminismTest, TiledGemmIsBitwiseAcrossThreadCounts) {
  // Big enough that the tiled path actually threads (2*M*K*N >= 2^23
  // and several row blocks), with remainders in every dimension. Each C
  // element is accumulated in fixed k-order regardless of workers.
  ThreadGuard guard;
  const Tensor a = testing::random_tensor({200, 300}, 31);
  const Tensor b = testing::random_tensor({300, 190}, 32);
  Tensor c1({200, 190});
  set_num_threads(1);
  gemm_tiled(a.data(), b.data(), c1.data(), 200, 300, 190);
  for (int workers : {2, 3, 8}) {
    set_num_threads(workers);
    Tensor cn({200, 190});
    gemm_tiled(a.data(), b.data(), cn.data(), 200, 300, 190);
    EXPECT_TRUE(bitwise_equal(cn, c1)) << workers << " workers";
  }
}

TEST(DeterminismTest, ThreadCountChangeMidSweepDoesNotChangeResults) {
  // Regression: calling set_num_threads between (or during) sweeps must
  // not alter any tiled result — thread count only partitions row
  // blocks, never the per-element accumulation order.
  ThreadGuard guard;
  const Tensor a = testing::random_tensor({150, 280}, 33);
  const Tensor b = testing::random_tensor({280, 170}, 34);
  set_num_threads(1);
  Tensor want({150, 170});
  gemm_tiled(a.data(), b.data(), want.data(), 150, 280, 170);

  const int plan[] = {4, 1, 6, 2, 8};
  for (size_t step = 0; step < sizeof(plan) / sizeof(plan[0]); ++step) {
    set_num_threads(plan[step]);
    Tensor got({150, 170});
    gemm_tiled(a.data(), b.data(), got.data(), 150, 280, 170);
    EXPECT_TRUE(bitwise_equal(got, want)) << "step " << step << " (" << plan[step]
                                          << " workers)";
  }
}

TEST(DeterminismTest, TiledRemainderSweepIsCleanUnderManyThreads) {
  // The full remainder grid under a high worker count: small shapes stay
  // serial (below the FLOP cut), the decision is shape-only, and every
  // shape still matches the reference kernel.
  ThreadGuard guard;
  set_num_threads(8);
  const verify::SweepResult r = verify::sweep_gemm_tiled(verify::remainder_gemm_shapes());
  EXPECT_TRUE(r.ok()) << r.first_failure;
}

TEST(DeterminismTest, CompiledPlanIsBitwiseAcrossThreadCounts) {
  // The compiled ExecutionPlan threads over the batch dimension inside
  // each conv step; per-sample writes are disjoint and each GEMM output
  // element accumulates in fixed k-order, so 1 worker vs N workers must
  // be bitwise — for both the exact plan and the BN-folded plan (folding
  // changes the numbers once at compile time, not per-run).
  ThreadGuard guard;
  const GemmKernelScope scope(GemmKernel::kTiled);
  const nn::Model model = models::make_model("resnet20", [] {
    models::BuildConfig cfg;
    cfg.num_classes = 4;
    cfg.input_size = 8;
    cfg.width_mult = 0.5f;
    return cfg;
  }());
  const graph::ModuleGraph g = graph::ModuleGraph::build(model);
  for (const bool fold : {false, true}) {
    compile::CompileOptions opts;
    opts.fold_batchnorm = fold;
    const compile::CompileResult result = compile::compile(g, opts);
    ASSERT_NE(result.plan, nullptr);
    const Tensor x = testing::random_tensor({6, 3, 8, 8}, 41);

    set_num_threads(1);
    nn::InferScratch s1;
    const Tensor y1 = result.plan->run(x, s1);
    for (int workers : {2, 4, 8}) {
      set_num_threads(workers);
      nn::InferScratch sn;
      const Tensor yn = result.plan->run(x, sn);
      EXPECT_TRUE(bitwise_equal(yn, y1))
          << workers << " workers, fold_batchnorm=" << fold;
    }
  }
}

// ---- pruning decisions ------------------------------------------------------

struct PruneRun {
  std::vector<core::UnitSelection> selection;
  std::map<std::string, Tensor> state;  // post-surgery weights
};

PruneRun run_pruning(int threads) {
  set_num_threads(threads);
  models::BuildConfig mcfg;
  mcfg.num_classes = 3;
  mcfg.input_size = 8;
  mcfg.width_mult = 0.5f;
  nn::Model model = models::make_tiny_cnn(mcfg);
  data::SyntheticCifarConfig dcfg;
  dcfg.num_classes = 3;
  dcfg.train_per_class = 8;
  dcfg.test_per_class = 2;
  dcfg.image_size = 8;
  const data::SyntheticCifar data = data::make_synthetic_cifar(dcfg);

  core::ImportanceEvaluator eval(core::ImportanceConfig{.images_per_class = 4});
  const core::ImportanceResult scores = eval.evaluate(model, data.train);
  core::PruneStrategyConfig scfg;
  // Every filter qualifies; the fraction cap picks the lowest scorers.
  // Guarantees a non-empty selection so the comparison is meaningful.
  scfg.score_threshold = 1e9f;
  scfg.max_fraction_per_iter = 0.25f;
  PruneRun run;
  run.selection = core::select_filters(scores, scfg);
  core::apply_selection(model, run.selection);
  run.state = model.state_dict();
  return run;
}

void expect_same_run(const PruneRun& a, const PruneRun& b) {
  ASSERT_EQ(a.selection.size(), b.selection.size());
  for (size_t i = 0; i < a.selection.size(); ++i) {
    EXPECT_EQ(a.selection[i].unit_index, b.selection[i].unit_index);
    EXPECT_EQ(a.selection[i].filters, b.selection[i].filters);
  }
  ASSERT_EQ(a.state.size(), b.state.size());
  for (const auto& [key, tensor] : a.state) {
    const auto it = b.state.find(key);
    ASSERT_NE(it, b.state.end()) << key;
    EXPECT_TRUE(bitwise_equal(tensor, it->second)) << "post-surgery weight " << key;
  }
}

TEST(DeterminismTest, PruningDecisionsIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const PruneRun serial = run_pruning(1);
  const PruneRun threaded = run_pruning(8);
  expect_same_run(serial, threaded);
  // At least something must have been selected for this test to mean much.
  EXPECT_GT(core::selection_size(serial.selection), 0);
}

TEST(DeterminismTest, PruningDecisionsIdenticalAcrossReruns) {
  ThreadGuard guard;
  const PruneRun first = run_pruning(4);
  const PruneRun second = run_pruning(4);
  expect_same_run(first, second);
}

}  // namespace
}  // namespace capr
