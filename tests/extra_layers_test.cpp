// Tests for Dropout, LeakyReLU, AvgPool2d, Adam and LR schedules.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/dropout.h"
#include "nn/schedulers.h"
#include "nn/trainer.h"
#include "data/synthetic.h"
#include "models/builders.h"
#include "test_util.h"

namespace capr::nn {
namespace {

using capr::testing::random_tensor;

TEST(DropoutTest, EvalIsIdentity) {
  Dropout drop(0.5f);
  const Tensor x = random_tensor({2, 8}, 1);
  EXPECT_TRUE(drop.forward(x, false).allclose(x, 0.0f));
}

TEST(DropoutTest, TrainZeroesApproximatelyP) {
  Dropout drop(0.3f);
  Tensor x({1, 10000}, 1.0f);
  const Tensor y = drop.forward(x, true);
  int64_t zeros = 0;
  double sum = 0.0;
  for (int64_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y[i], 1.0f / 0.7f, 1e-5f);  // inverted scaling
    }
    sum += y[i];
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.numel(), 0.3, 0.02);
  EXPECT_NEAR(sum / y.numel(), 1.0, 0.03);  // expectation preserved
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Dropout drop(0.5f);
  const Tensor x = random_tensor({1, 100}, 2);
  const Tensor y = drop.forward(x, true);
  const Tensor g = drop.backward(Tensor({1, 100}, 1.0f));
  for (int64_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) {
      EXPECT_EQ(g[i], 0.0f);
    } else {
      EXPECT_NEAR(g[i], 2.0f, 1e-5f);
    }
  }
}

TEST(DropoutTest, Validation) {
  EXPECT_THROW(Dropout(-0.1f), std::invalid_argument);
  EXPECT_THROW(Dropout(1.0f), std::invalid_argument);
  EXPECT_NO_THROW(Dropout(0.0f));
}

TEST(LeakyReLUTest, ForwardAndBackward) {
  LeakyReLU lrelu(0.1f);
  const Tensor x = Tensor::from({1, 4}, {-2, -1, 1, 2});
  const Tensor y = lrelu.forward(x, true);
  EXPECT_TRUE(y.allclose(Tensor::from({1, 4}, {-0.2f, -0.1f, 1.0f, 2.0f})));
  const Tensor g = lrelu.backward(Tensor({1, 4}, 1.0f));
  EXPECT_TRUE(g.allclose(Tensor::from({1, 4}, {0.1f, 0.1f, 1.0f, 1.0f})));
}

TEST(AvgPoolTest, ForwardAveragesWindows) {
  AvgPool2d pool(2);
  const Tensor x = Tensor::from({1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor y = pool.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 2.5f);
}

TEST(AvgPoolTest, BackwardSpreadsGradientEvenly) {
  AvgPool2d pool(2);
  pool.forward(Tensor({1, 1, 4, 4}, 1.0f), true);
  const Tensor g = pool.backward(Tensor({1, 1, 2, 2}, 4.0f));
  for (int64_t i = 0; i < g.numel(); ++i) EXPECT_FLOAT_EQ(g[i], 1.0f);
}

TEST(AvgPoolTest, NumericalGradient) {
  AvgPool2d pool(2);
  Tensor x = random_tensor({1, 2, 4, 4}, 3);
  const Tensor w = random_tensor({1, 2, 2, 2}, 4, 0.1f, 1.0f);
  pool.forward(x, true);
  const Tensor gx = pool.backward(w);
  for (int64_t i = 0; i < x.numel(); i += 3) {
    const float num = capr::testing::numerical_grad(
        [&] {
          const Tensor y = pool.forward(x, true);
          double acc = 0.0;
          for (int64_t k = 0; k < y.numel(); ++k) acc += static_cast<double>(y[k]) * w[k];
          return static_cast<float>(acc);
        },
        x[i]);
    EXPECT_NEAR(gx[i], num, 1e-2f);
  }
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimise f(w) = (w - 3)^2 with Adam; grad = 2(w - 3).
  Param p("w", {1});
  p.value[0] = 0.0f;
  Adam adam({.lr = 0.1f});
  for (int i = 0; i < 200; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    adam.step({&p});
  }
  EXPECT_NEAR(p.value[0], 3.0f, 0.05f);
}

TEST(AdamTest, SurvivesShapeChangeAndReset) {
  Param p("w", {2});
  p.grad = Tensor({2}, 1.0f);
  Adam adam({.lr = 0.01f});
  adam.step({&p});
  p.assign(Tensor({3}));
  p.grad = Tensor({3}, 1.0f);
  EXPECT_NO_THROW(adam.step({&p}));
  adam.reset_state();
  EXPECT_NO_THROW(adam.step({&p}));
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  Param p("w", {1});
  p.value[0] = 5.0f;
  p.grad[0] = 0.0f;
  Adam adam({.lr = 0.1f, .weight_decay = 0.5f});
  adam.step({&p});
  EXPECT_LT(p.value[0], 5.0f);
}

TEST(StepLrTest, DecaysAtBoundaries) {
  StepLr sched(3, 0.1f);
  EXPECT_FLOAT_EQ(sched.multiplier(0), 1.0f);
  EXPECT_FLOAT_EQ(sched.multiplier(2), 1.0f);
  EXPECT_FLOAT_EQ(sched.multiplier(3), 0.1f);
  EXPECT_NEAR(sched.multiplier(6), 0.01f, 1e-6f);
  EXPECT_THROW(sched.multiplier(-1), std::invalid_argument);
  EXPECT_THROW(StepLr(0, 0.5f), std::invalid_argument);
}

TEST(CosineLrTest, AnnealsFromOneToMin) {
  CosineLr sched(10, 0.1f);
  EXPECT_FLOAT_EQ(sched.multiplier(0), 1.0f);
  EXPECT_NEAR(sched.multiplier(5), 0.55f, 1e-5f);  // halfway: (1+0.1)/2
  EXPECT_NEAR(sched.multiplier(10), 0.1f, 1e-5f);
  EXPECT_NEAR(sched.multiplier(99), 0.1f, 1e-5f);  // clamped past the end
  EXPECT_THROW(CosineLr(0), std::invalid_argument);
}

TEST(SchedulerTest, TrainerUsesSchedule) {
  // Train two identical models, one with a cosine schedule driven to
  // lr ~ 0 — the schedule must change the outcome vs constant lr.
  models::BuildConfig mcfg;
  mcfg.num_classes = 3;
  mcfg.input_size = 8;
  data::SyntheticCifarConfig dcfg;
  dcfg.num_classes = 3;
  dcfg.train_per_class = 8;
  dcfg.test_per_class = 4;
  dcfg.image_size = 8;
  const auto data = data::make_synthetic_cifar(dcfg);

  Model a = models::make_tiny_cnn(mcfg);
  Model b = models::make_tiny_cnn(mcfg);
  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = 8;
  train(a, data.train, cfg);
  CosineLr sched(4, 0.0f);
  cfg.lr_schedule = &sched;
  train(b, data.train, cfg);
  const Tensor x = data.test.slice(0, 4).images;
  EXPECT_FALSE(a.forward(x, false).allclose(b.forward(x, false), 1e-4f));
}

}  // namespace
}  // namespace capr::nn
