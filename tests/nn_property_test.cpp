// Behavioural invariances of the NN layers that the pruning machinery
// quietly relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/loss.h"
#include "nn/sequential.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace capr::nn {
namespace {

using capr::testing::random_tensor;

TEST(BatchNormProperty, OutputInvariantToInputAffineRescale) {
  // BN(ax + b) == BN(x) in training mode (per-channel affine inputs are
  // normalised away) — the reason tiny conv weights do NOT silence a
  // channel when a BN follows, and hence why SSS prunes gammas instead.
  BatchNorm2d bn(3);
  const Tensor x = random_tensor({4, 3, 5, 5}, 1);
  const Tensor y1 = bn.forward(x, true);
  Tensor scaled = x;
  scale_inplace(scaled, 7.5f);
  for (int64_t i = 0; i < scaled.numel(); ++i) scaled[i] += 2.0f;
  const Tensor y2 = bn.forward(scaled, true);
  EXPECT_TRUE(y2.allclose(y1, 1e-3f));
}

TEST(BatchNormProperty, GammaZeroSilencesChannelExactly) {
  BatchNorm2d bn(2);
  bn.gamma().value[1] = 0.0f;
  bn.beta().value[1] = 0.0f;
  const Tensor x = random_tensor({2, 2, 4, 4}, 2);
  const Tensor y = bn.forward(x, true);
  for (int64_t n = 0; n < 2; ++n) {
    const float* p = y.data() + (n * 2 + 1) * 16;
    for (int64_t k = 0; k < 16; ++k) EXPECT_EQ(p[k], 0.0f);
  }
}

TEST(ConvProperty, LinearityInInput) {
  // conv(a*x + b*y) == a*conv(x) + b*conv(y) for bias-free convs.
  Conv2d conv(2, 3, 3, 1, 1, false);
  Rng rng(3);
  rng.fill_normal(conv.weight().value, 0.0f, 0.5f);
  const Tensor x = random_tensor({1, 2, 6, 6}, 4);
  const Tensor y = random_tensor({1, 2, 6, 6}, 5);
  Tensor combo(x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) combo[i] = 2.0f * x[i] - 3.0f * y[i];
  const Tensor lhs = conv.forward(combo, false);
  Tensor rhs = conv.forward(x, false);
  scale_inplace(rhs, 2.0f);
  axpy_inplace(rhs, -3.0f, conv.forward(y, false));
  EXPECT_TRUE(lhs.allclose(rhs, 1e-3f));
}

TEST(ConvProperty, ZeroFilterGivesZeroChannel) {
  Conv2d conv(2, 3, 3, 1, 1, false);
  Rng rng(6);
  rng.fill_normal(conv.weight().value, 0.0f, 0.5f);
  const int64_t fsz = 2 * 9;
  for (int64_t i = 0; i < fsz; ++i) conv.weight().value[1 * fsz + i] = 0.0f;
  const Tensor y = conv.forward(random_tensor({2, 2, 5, 5}, 7), false);
  for (int64_t n = 0; n < 2; ++n) {
    const float* p = y.data() + (n * 3 + 1) * 25;
    for (int64_t k = 0; k < 25; ++k) EXPECT_EQ(p[k], 0.0f);
  }
}

TEST(ConvProperty, TranslationCovarianceWithoutPadding) {
  // Shifting the input by one pixel shifts the (valid-region) output by
  // one pixel for stride-1 convolutions.
  Conv2d conv(1, 1, 3, 1, 0, false);
  Rng rng(8);
  rng.fill_normal(conv.weight().value, 0.0f, 0.5f);
  Tensor x({1, 1, 8, 8});
  rng.fill_normal(x, 0.0f, 1.0f);
  Tensor shifted({1, 1, 8, 8});
  for (int64_t yy = 0; yy < 8; ++yy) {
    for (int64_t xx = 1; xx < 8; ++xx) {
      shifted[yy * 8 + xx] = x[yy * 8 + xx - 1];
    }
  }
  const Tensor y0 = conv.forward(x, false);      // [1,1,6,6]
  const Tensor y1 = conv.forward(shifted, false);
  for (int64_t yy = 0; yy < 6; ++yy) {
    for (int64_t xx = 1; xx < 6; ++xx) {
      EXPECT_NEAR(y1.at({0, 0, yy, xx}), y0.at({0, 0, yy, xx - 1}), 1e-4f);
    }
  }
}

TEST(SoftmaxProperty, InvariantToLogitShift) {
  const Tensor logits = random_tensor({3, 6}, 9, -2.0f, 2.0f);
  Tensor shifted = logits;
  for (int64_t i = 0; i < shifted.numel(); ++i) shifted[i] += 100.0f;
  EXPECT_TRUE(softmax(shifted).allclose(softmax(logits), 1e-5f));
}

TEST(CrossEntropyProperty, LossDecreasesWhenLabelLogitGrows) {
  SoftmaxCrossEntropy ce;
  Tensor logits({1, 4});
  const float l0 = ce.forward(logits, {2});
  logits[2] = 3.0f;
  SoftmaxCrossEntropy ce2;
  const float l1 = ce2.forward(logits, {2});
  EXPECT_LT(l1, l0);
}

TEST(SequentialProperty, EmptySequentialIsIdentity) {
  Sequential seq;
  const Tensor x = random_tensor({2, 3}, 10);
  EXPECT_TRUE(seq.forward(x, true).allclose(x, 0.0f));
  EXPECT_TRUE(seq.backward(x).allclose(x, 0.0f));
  EXPECT_EQ(seq.output_shape({3}), (Shape{3}));
}

}  // namespace
}  // namespace capr::nn
