#include "baselines/unstructured.h"

#include <gtest/gtest.h>

#include "core/modified_loss.h"
#include "data/synthetic.h"
#include "flops/flops.h"
#include "models/builders.h"
#include "tensor/ops.h"

namespace capr::baselines {
namespace {

struct Fixture {
  nn::Model model;
  data::SyntheticCifar data;

  Fixture() {
    models::BuildConfig mcfg;
    mcfg.num_classes = 3;
    mcfg.input_size = 8;
    mcfg.width_mult = 0.5f;
    model = models::make_tiny_cnn(mcfg);
    data::SyntheticCifarConfig dcfg;
    dcfg.num_classes = 3;
    dcfg.train_per_class = 12;
    dcfg.test_per_class = 6;
    dcfg.image_size = 8;
    dcfg.noise_stddev = 0.15f;
    data = data::make_synthetic_cifar(dcfg);
    nn::TrainConfig tcfg;
    tcfg.epochs = 8;
    tcfg.batch_size = 12;
    tcfg.sgd.lr = 0.05f;
    nn::train(model, data.train, tcfg);
  }
};

int64_t count_zero_weights(nn::Model& m) {
  int64_t zeros = 0;
  m.net->visit([&zeros](nn::Layer& l) {
    if (dynamic_cast<nn::Conv2d*>(&l) != nullptr || dynamic_cast<nn::Linear*>(&l) != nullptr) {
      for (nn::Param* p : l.params()) {
        if (p->name == "weight") zeros += count_near_zero(p->value, 0.0f);
      }
    }
  });
  return zeros;
}

TEST(UnstructuredTest, AchievesRequestedSparsity) {
  Fixture f;
  UnstructuredConfig cfg;
  cfg.sparsity = 0.7f;
  cfg.finetune.epochs = 2;
  cfg.finetune.batch_size = 12;
  cfg.finetune.sgd.lr = 0.01f;
  UnstructuredPruner pruner(cfg);
  const UnstructuredResult res = pruner.run(f.model, f.data.train, f.data.test);
  EXPECT_NEAR(res.achieved_sparsity(), 0.7, 0.05);
  EXPECT_GT(res.weights_total, 0);
  // Masks survived fine-tuning: the live model really is sparse.
  EXPECT_GE(count_zero_weights(f.model), res.weights_masked);
}

TEST(UnstructuredTest, ShapesAndFlopsUnchanged) {
  Fixture f;
  const flops::ModelCost before = flops::count(f.model);
  UnstructuredConfig cfg;
  cfg.sparsity = 0.5f;
  cfg.finetune.epochs = 1;
  cfg.finetune.batch_size = 12;
  UnstructuredPruner pruner(cfg);
  pruner.run(f.model, f.data.train, f.data.test);
  const flops::ModelCost after = flops::count(f.model);
  // The defining property: dense cost model sees no difference.
  EXPECT_EQ(after.total_flops, before.total_flops);
  EXPECT_EQ(after.total_params, before.total_params);
}

TEST(UnstructuredTest, ModerateSparsityKeepsAccuracy) {
  Fixture f;
  UnstructuredConfig cfg;
  cfg.sparsity = 0.5f;
  cfg.finetune.epochs = 3;
  cfg.finetune.batch_size = 12;
  cfg.finetune.sgd.lr = 0.02f;
  UnstructuredPruner pruner(cfg);
  const UnstructuredResult res = pruner.run(f.model, f.data.train, f.data.test);
  EXPECT_GT(res.accuracy_after, res.accuracy_before - 0.15f);
}

TEST(UnstructuredTest, Validation) {
  Fixture f;
  UnstructuredConfig cfg;
  cfg.sparsity = 0.0f;
  UnstructuredPruner p0(cfg);
  EXPECT_THROW(p0.run(f.model, f.data.train, f.data.test), std::invalid_argument);
  cfg.sparsity = 1.0f;
  UnstructuredPruner p1(cfg);
  EXPECT_THROW(p1.run(f.model, f.data.train, f.data.test), std::invalid_argument);
}

}  // namespace
}  // namespace capr::baselines
