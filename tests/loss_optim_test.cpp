#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.h"
#include "nn/optim.h"
#include "test_util.h"

namespace capr::nn {
namespace {

TEST(SoftmaxTest, RowsSumToOne) {
  Tensor logits = capr::testing::random_tensor({4, 7}, 60, -5.0f, 5.0f);
  Tensor p = softmax(logits);
  for (int64_t i = 0; i < 4; ++i) {
    double row = 0.0;
    for (int64_t j = 0; j < 7; ++j) {
      row += p[i * 7 + j];
      EXPECT_GT(p[i * 7 + j], 0.0f);
    }
    EXPECT_NEAR(row, 1.0, 1e-5);
  }
}

TEST(SoftmaxTest, StableUnderLargeLogits) {
  Tensor logits = Tensor::from({1, 3}, {1000.0f, 1001.0f, 999.0f});
  Tensor p = softmax(logits);
  EXPECT_FALSE(std::isnan(p[0]));
  EXPECT_GT(p[1], p[0]);
  EXPECT_GT(p[0], p[2]);
}

TEST(CrossEntropyTest, UniformLogitsGiveLogC) {
  SoftmaxCrossEntropy ce;
  Tensor logits({2, 4});  // all zeros -> uniform distribution
  const float loss = ce.forward(logits, {0, 3});
  EXPECT_NEAR(loss, std::log(4.0f), 1e-5f);
}

TEST(CrossEntropyTest, PerfectPredictionLowLoss) {
  SoftmaxCrossEntropy ce;
  Tensor logits = Tensor::from({1, 3}, {20.0f, 0.0f, 0.0f});
  EXPECT_LT(ce.forward(logits, {0}), 1e-4f);
}

TEST(CrossEntropyTest, BackwardMatchesNumerical) {
  SoftmaxCrossEntropy ce;
  Tensor logits = capr::testing::random_tensor({3, 5}, 61, -2.0f, 2.0f);
  const std::vector<int64_t> labels{1, 4, 0};
  ce.forward(logits, labels);
  const Tensor grad = ce.backward();
  for (int64_t i = 0; i < logits.numel(); ++i) {
    const float num = capr::testing::numerical_grad(
        [&] {
          SoftmaxCrossEntropy fresh;
          return fresh.forward(logits, labels);
        },
        logits[i]);
    EXPECT_NEAR(grad[i], num, 2e-3f);
  }
}

TEST(CrossEntropyTest, Validation) {
  SoftmaxCrossEntropy ce;
  EXPECT_THROW(ce.forward(Tensor({2, 3}), {0}), std::invalid_argument);
  EXPECT_THROW(ce.forward(Tensor({1, 3}), {3}), std::out_of_range);
  SoftmaxCrossEntropy fresh;
  EXPECT_THROW(fresh.backward(), std::logic_error);
}

TEST(AccuracyTest, CountsArgmaxMatches) {
  Tensor logits = Tensor::from({3, 2}, {1, 0, 0, 1, 2, 1});
  EXPECT_FLOAT_EQ(accuracy(logits, {0, 1, 0}), 1.0f);
  EXPECT_NEAR(accuracy(logits, {1, 1, 0}), 2.0f / 3.0f, 1e-6f);
}

TEST(SgdTest, PlainStep) {
  Param p("w", {2});
  p.value = Tensor::from({1.0f, 2.0f});
  p.grad = Tensor::from({0.5f, -0.5f});
  SGD sgd({.lr = 0.1f, .momentum = 0.0f, .weight_decay = 0.0f});
  sgd.step({&p});
  EXPECT_NEAR(p.value[0], 0.95f, 1e-6f);
  EXPECT_NEAR(p.value[1], 2.05f, 1e-6f);
}

TEST(SgdTest, WeightDecayAddsL2Pull) {
  Param p("w", {1});
  p.value = Tensor::from({2.0f});
  p.grad = Tensor::from({0.0f});
  SGD sgd({.lr = 0.1f, .momentum = 0.0f, .weight_decay = 0.1f});
  sgd.step({&p});
  // effective grad = 0 + 0.1*2 = 0.2 -> w = 2 - 0.1*0.2
  EXPECT_NEAR(p.value[0], 1.98f, 1e-6f);
}

TEST(SgdTest, MomentumAccumulates) {
  Param p("w", {1});
  p.value = Tensor::from({0.0f});
  SGD sgd({.lr = 1.0f, .momentum = 0.5f, .weight_decay = 0.0f});
  p.grad = Tensor::from({1.0f});
  sgd.step({&p});  // v = 1, w = -1
  EXPECT_NEAR(p.value[0], -1.0f, 1e-6f);
  p.grad = Tensor::from({1.0f});
  sgd.step({&p});  // v = 1.5, w = -2.5
  EXPECT_NEAR(p.value[0], -2.5f, 1e-6f);
  sgd.reset_state();
  p.grad = Tensor::from({1.0f});
  sgd.step({&p});  // v = 1 again
  EXPECT_NEAR(p.value[0], -3.5f, 1e-6f);
}

TEST(SgdTest, SurvivesShapeChange) {
  Param p("w", {2});
  p.grad = Tensor({2}, 1.0f);
  SGD sgd({.lr = 0.1f, .momentum = 0.9f, .weight_decay = 0.0f});
  sgd.step({&p});
  p.assign(Tensor({3}));  // surgery-style reallocation
  p.grad = Tensor({3}, 1.0f);
  EXPECT_NO_THROW(sgd.step({&p}));
  EXPECT_EQ(p.value.numel(), 3);
}

TEST(SgdTest, ZeroGrad) {
  Param p("w", {2});
  p.grad = Tensor::from({3.0f, 4.0f});
  SGD::zero_grad({&p});
  EXPECT_FLOAT_EQ(p.grad[0], 0.0f);
  EXPECT_FLOAT_EQ(p.grad[1], 0.0f);
}

}  // namespace
}  // namespace capr::nn
