// Strategy-interface refactor guarantees:
//  - the class-aware path through strategy::ClassAwareStrategy is
//    bitwise-identical (selections AND pruned weights) to the legacy
//    core::select_filters path on all nine architectures;
//  - the shared engine reproduces the old BaselinePruner selection
//    semantics in percentage mode;
//  - residual-constrained groups are filtered out of every strategy's
//    view before selection;
//  - every tournament entrant's plan passes analysis::require_ok.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "core/importance.h"
#include "core/strategy.h"
#include "core/surgeon.h"
#include "data/synthetic.h"
#include "graph/graph.h"
#include "models/builders.h"
#include "strategy/class_aware.h"
#include "strategy/competitors.h"
#include "strategy/runner.h"
#include "tournament/tournament.h"

namespace capr::strategy {
namespace {

const char* kAllArchs[] = {"vgg11",    "vgg13",    "vgg16",    "vgg19", "resnet20",
                           "resnet32", "resnet44", "resnet56", "tiny"};

data::SyntheticCifar tiny_data(int64_t num_classes, int64_t image_size) {
  data::SyntheticCifarConfig dcfg;
  dcfg.num_classes = num_classes;
  dcfg.train_per_class = 6;
  dcfg.test_per_class = 3;
  dcfg.image_size = image_size;
  return data::make_synthetic_cifar(dcfg);
}

void expect_same_selection(const std::vector<core::UnitSelection>& a,
                           const std::vector<core::UnitSelection>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].unit_index, b[i].unit_index);
    EXPECT_EQ(a[i].filters, b[i].filters);
  }
}

void expect_bitwise_equal(const std::map<std::string, Tensor>& a,
                          const std::map<std::string, Tensor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [key, ta] : a) {
    const auto it = b.find(key);
    ASSERT_NE(it, b.end()) << key;
    const Tensor& tb = it->second;
    ASSERT_EQ(ta.shape(), tb.shape()) << key;
    for (int64_t i = 0; i < ta.numel(); ++i) {
      ASSERT_EQ(ta[i], tb[i]) << key << " element " << i;
    }
  }
}

// The tentpole's parity proof: on every architecture, the class-aware
// method through the new graph-driven interface selects the same
// filters and produces bitwise-identical pruned weights as the
// pre-refactor select_filters path.
TEST(StrategyParityTest, ClassAwareBitwiseIdenticalOnAllArchs) {
  const data::SyntheticCifar data = tiny_data(10, 16);
  core::ImportanceConfig icfg;
  icfg.images_per_class = 2;
  icfg.tau_mode = core::TauMode::kQuantile;

  for (const char* arch : kAllArchs) {
    SCOPED_TRACE(arch);
    models::BuildConfig mcfg;  // default: 10 classes, 16px
    nn::Model legacy = models::make_model(arch, mcfg);
    nn::Model graph_driven = models::make_model(arch, mcfg);

    // Legacy path: evaluator + select_filters over the flat result.
    core::ImportanceEvaluator evaluator(icfg);
    const core::ImportanceResult scores = evaluator.evaluate(legacy, data.train);
    core::PruneStrategyConfig scfg;
    scfg.mode = core::StrategyMode::kPercentage;  // always selects; exercises surgery
    const auto legacy_sel = core::select_filters(scores, scfg);
    ASSERT_FALSE(legacy_sel.empty());

    // Graph-driven path: same scorer behind the strategy interface.
    ClassAwareStrategyConfig ccfg;
    ccfg.importance = icfg;
    ccfg.mode = core::StrategyMode::kPercentage;
    ClassAwareStrategy strat(ccfg);
    const graph::ModuleGraph g = graph::ModuleGraph::build(graph_driven);
    ASSERT_TRUE(g.ok());
    const StrategyContext ctx{graph_driven, g, data.train};
    const auto new_sel = select(strat.score(ctx), strat, core::SelectionLimits{});

    expect_same_selection(legacy_sel, new_sel);

    // And the surgery produces bitwise-identical weights.
    core::apply_selection(legacy, legacy_sel);
    core::apply_selection(graph_driven, new_sel);
    expect_bitwise_equal(legacy.state_dict(), graph_driven.state_dict());

    // The threshold-gated paper mode agrees as well (selection may be
    // smaller or empty; it must be the SAME).
    core::PruneStrategyConfig both = scfg;
    both.mode = core::StrategyMode::kBoth;
    ClassAwareStrategyConfig cboth = ccfg;
    cboth.mode = core::StrategyMode::kBoth;
    ClassAwareStrategy strat_both(cboth);
    // Models were pruned above; rebuild for a clean comparison.
    nn::Model m1 = models::make_model(arch, mcfg);
    nn::Model m2 = models::make_model(arch, mcfg);
    const auto sel1 = core::select_filters(evaluator.evaluate(m1, data.train), both);
    const graph::ModuleGraph g2 = graph::ModuleGraph::build(m2);
    const StrategyContext ctx2{m2, g2, data.train};
    const auto sel2 = select(strat_both.score(ctx2), strat_both, core::SelectionLimits{});
    expect_same_selection(sel1, sel2);
  }
}

// The engine in percentage mode reproduces the deleted BaselinePruner
// select_lowest semantics: lowest-scoring global fraction, per-layer
// floor and cap, grouped per unit with ascending filter indices.
TEST(StrategyEngineTest, PercentageModeMatchesLegacyBaselineSemantics) {
  std::vector<core::ScoredUnit> units;
  units.push_back({0, {0.9f, 0.1f, 0.8f, 0.2f, 0.7f, 0.3f, 0.6f, 0.4f}});
  units.push_back({1, {0.05f, 0.95f, 0.85f, 0.15f, 0.75f, 0.25f, 0.65f, 0.35f}});
  core::PruneStrategyConfig cfg;
  cfg.mode = core::StrategyMode::kPercentage;
  cfg.max_fraction_per_iter = 0.25f;  // 4 of 16
  cfg.min_filters_per_layer = 2;
  const auto sel = core::select_scored(units, cfg, 10);
  // Globally lowest four: 0.05 (u1 f0), 0.1 (u0 f1), 0.15 (u1 f3), 0.2 (u0 f3).
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_EQ(sel[0].unit_index, 0u);
  EXPECT_EQ(sel[0].filters, (std::vector<int64_t>{1, 3}));
  EXPECT_EQ(sel[1].unit_index, 1u);
  EXPECT_EQ(sel[1].filters, (std::vector<int64_t>{0, 3}));
}

// A residual-constrained group never reaches a strategy's score set,
// even when someone hand-registers it as a model unit (the old
// BaselinePruner would happily have pruned it).
TEST(StrategyFilterTest, ResidualConstrainedGroupsAreExcluded) {
  models::BuildConfig mcfg;
  nn::Model model = models::make_resnet20(mcfg);
  const data::SyntheticCifar data = tiny_data(10, 16);
  const graph::ModuleGraph g = graph::ModuleGraph::build(model);
  ASSERT_TRUE(g.ok());

  // Builders annotate exactly the graph's prunable groups.
  const StrategyContext ctx{model, g, data.train};
  EXPECT_EQ(prunable_groups(ctx).size(), model.units.size());

  // Hand-register a constrained group (conv2 of a block) as a unit.
  const graph::CouplingGroup* constrained = nullptr;
  for (const graph::CouplingGroup& cg : g.groups()) {
    if (cg.residual_constrained) {
      constrained = &cg;
      break;
    }
  }
  ASSERT_NE(constrained, nullptr);
  model.units.push_back(g.materialize(*constrained));
  const size_t poisoned = model.units.size() - 1;

  const graph::ModuleGraph g2 = graph::ModuleGraph::build(model);
  const StrategyContext ctx2{model, g2, data.train};
  const auto groups = prunable_groups(ctx2);
  EXPECT_EQ(groups.size(), poisoned);  // everything but the constrained one
  for (const PrunableGroup& pg : groups) {
    EXPECT_NE(pg.unit_index, poisoned);
  }

  // End to end: dependency-aware scores + select never touch it.
  DependencyAwareStrategy strat;
  const auto sel = select(strat.score(ctx2), strat, core::SelectionLimits{});
  ASSERT_FALSE(sel.empty());
  for (const core::UnitSelection& s : sel) {
    EXPECT_NE(s.unit_index, poisoned);
  }
}

// Every tournament entrant's selection passes the static analyzer, on
// an architecture with residual constraints and on the tiny net.
TEST(StrategyCertificationTest, EveryEntrantPlanPassesRequireOk) {
  tournament::TournamentConfig tcfg;
  tcfg.class_aware.mode = core::StrategyMode::kPercentage;
  tcfg.class_aware.importance.images_per_class = 2;
  tcfg.criterion_images_per_class = 2;
  tcfg.provable.images_per_class = 2;

  for (const char* arch : {"resnet20", "tiny"}) {
    SCOPED_TRACE(arch);
    const data::SyntheticCifar data = tiny_data(10, 16);
    for (const std::string& name : tournament::default_roster()) {
      SCOPED_TRACE(name);
      auto strat = tournament::make_strategy(name, tcfg);
      models::BuildConfig mcfg;
      nn::Model model = models::make_model(arch, mcfg);
      const graph::ModuleGraph g = graph::ModuleGraph::build(model);
      ASSERT_TRUE(g.ok());
      const StrategyContext ctx{model, g, data.train};
      const core::SelectionLimits limits{};
      const auto sel = select(strat->score(ctx), *strat, limits);
      if (strat->mode() == core::StrategyMode::kPercentage) {
        EXPECT_FALSE(sel.empty());
      }
      const core::PruneStrategyConfig scfg = selection_config(*strat, limits);
      analysis::VerifyOptions opts;
      opts.strategy = &scfg;
      analysis::require_ok(analysis::analyze_plan(model, sel, opts));
      core::apply_selection(model, sel);
      analysis::require_ok(analysis::analyze_model(model));
    }
  }
}

// The shared runner: prunes over iterations, preserves the legacy stop
// reasons, and rejects out-of-range limits before any training.
TEST(StrategyRunnerTest, RunsAndValidates) {
  models::BuildConfig mcfg;
  mcfg.num_classes = 3;
  mcfg.input_size = 8;
  mcfg.width_mult = 0.5f;
  nn::Model model = models::make_tiny_cnn(mcfg);
  const data::SyntheticCifar data = tiny_data(3, 8);

  DependencyAwareStrategy strat;
  StrategyRunConfig rcfg;
  rcfg.max_iterations = 2;
  rcfg.max_accuracy_drop = 1.0f;
  rcfg.limits.max_fraction_per_iter = 0.2f;
  rcfg.limits.min_filters_per_layer = 1;
  rcfg.finetune.epochs = 1;
  rcfg.finetune.batch_size = 6;
  int iterations_seen = 0;
  rcfg.on_iteration = [&](const core::IterationRecord&) { ++iterations_seen; };
  const StrategyRunResult res = run_strategy(model, strat, data.train, data.test, rcfg);
  EXPECT_EQ(res.method, "dependency-aware");
  EXPECT_EQ(res.iterations_run, 2);
  EXPECT_EQ(iterations_seen, 2);
  EXPECT_GT(res.filters_removed, 0);
  EXPECT_EQ(res.stop_reason, "max iterations reached");
  EXPECT_GT(res.report.pruning_ratio(), 0.0);

  StrategyRunConfig bad = rcfg;
  bad.limits.max_fraction_per_iter = 0.0f;
  nn::Model fresh = models::make_tiny_cnn(mcfg);
  EXPECT_THROW(run_strategy(fresh, strat, data.train, data.test, bad), std::invalid_argument);
}

}  // namespace
}  // namespace capr::strategy
