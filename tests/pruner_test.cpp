// End-to-end tests of the class-aware pruning framework (Fig. 5 loop).
#include "core/pruner.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "models/builders.h"

namespace capr::core {
namespace {

struct Pipeline {
  nn::Model model;
  data::SyntheticCifar data;

  explicit Pipeline(const char* arch = "tiny") {
    models::BuildConfig mcfg;
    mcfg.num_classes = 4;
    mcfg.input_size = 8;
    mcfg.width_mult = 0.5f;
    model = models::make_model(arch, mcfg);

    data::SyntheticCifarConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.train_per_class = 16;
    dcfg.test_per_class = 8;
    dcfg.image_size = 8;
    dcfg.noise_stddev = 0.1f;
    data = data::make_synthetic_cifar(dcfg);

    // Pre-train with the modified cost, as the framework prescribes.
    nn::TrainConfig tcfg;
    tcfg.epochs = 10;
    tcfg.batch_size = 16;
    tcfg.sgd.lr = 0.05f;
    ModifiedLoss reg;
    nn::train(model, data.train, tcfg, &reg);
  }

  ClassAwarePrunerConfig pruner_config() const {
    ClassAwarePrunerConfig cfg;
    cfg.importance.images_per_class = 4;
    cfg.strategy.min_filters_per_layer = 2;
    cfg.strategy.max_fraction_per_iter = 0.2f;
    cfg.finetune.epochs = 3;
    cfg.finetune.batch_size = 16;
    cfg.finetune.sgd.lr = 0.02f;
    cfg.max_accuracy_drop = 0.25f;
    cfg.max_iterations = 4;
    return cfg;
  }
};

TEST(ClassAwarePrunerTest, PrunesAndReportsOnTinyCnn) {
  Pipeline p;
  ClassAwarePruner pruner(p.pruner_config());
  const PruneRunResult res = pruner.run(p.model, p.data.train, p.data.test);

  EXPECT_GT(res.original_accuracy, 0.5f);
  EXPECT_FALSE(res.iterations.empty());
  EXPECT_GT(res.report.pruning_ratio(), 0.0);
  EXPECT_GT(res.report.flops_reduction(), 0.0);
  EXPECT_LT(res.report.params_after, res.report.params_before);
  EXPECT_FALSE(res.stop_reason.empty());
  // Score snapshots captured for the figure benches.
  EXPECT_FALSE(res.scores_before.units.empty());
  EXPECT_FALSE(res.scores_after.units.empty());
}

TEST(ClassAwarePrunerTest, IterationRecordsAreMonotone) {
  Pipeline p;
  ClassAwarePruner pruner(p.pruner_config());
  const PruneRunResult res = pruner.run(p.model, p.data.train, p.data.test);
  int64_t last_params = res.report.params_before;
  int64_t last_filters = std::numeric_limits<int64_t>::max();
  for (const IterationRecord& r : res.iterations) {
    EXPECT_GT(r.filters_removed, 0);
    EXPECT_LT(r.params, last_params);
    EXPECT_LT(r.filters_remaining, last_filters);
    last_params = r.params;
    last_filters = r.filters_remaining;
  }
}

TEST(ClassAwarePrunerTest, ModelStillFunctionalAfterRun) {
  Pipeline p;
  ClassAwarePruner pruner(p.pruner_config());
  pruner.run(p.model, p.data.train, p.data.test);
  const Tensor x = p.data.test.slice(0, 4).images;
  const Tensor logits = p.model.forward(x, false);
  EXPECT_EQ(logits.shape(), (Shape{4, 4}));
  // All prunable units still satisfy their metadata invariants.
  for (const nn::PrunableUnit& u : p.model.units) {
    EXPECT_GE(u.conv->out_channels(), 2);
    if (u.bn != nullptr) {
      EXPECT_EQ(u.bn->channels(), u.conv->out_channels());
    }
  }
}

TEST(ClassAwarePrunerTest, StrictDropBoundStopsEarly) {
  Pipeline p;
  ClassAwarePrunerConfig cfg = p.pruner_config();
  cfg.max_accuracy_drop = -1.0f;  // any drop (even negative) exceeds this
  ClassAwarePruner pruner(cfg);
  const PruneRunResult res = pruner.run(p.model, p.data.train, p.data.test);
  EXPECT_LE(res.iterations.size(), 1u);
  EXPECT_EQ(res.stop_reason, "accuracy drop not recovered by fine-tuning");
}

TEST(ClassAwarePrunerTest, WorksOnResnetWithBlockConstraint) {
  Pipeline p("resnet20");
  ClassAwarePrunerConfig cfg = p.pruner_config();
  cfg.max_iterations = 2;
  // Percentage mode guarantees removals even when every filter clears the
  // score threshold (common on well-trained tiny nets); this test checks
  // the residual-block surgery constraint, not the threshold rule.
  cfg.strategy.mode = StrategyMode::kPercentage;
  ClassAwarePruner pruner(cfg);
  const PruneRunResult res = pruner.run(p.model, p.data.train, p.data.test);
  EXPECT_GT(res.report.pruning_ratio(), 0.0);
  // Residual adds still legal: conv2 out-channels unchanged per block.
  const Tensor x = p.data.test.slice(0, 2).images;
  EXPECT_NO_THROW(p.model.forward(x, false));
}

TEST(ClassAwarePrunerTest, DeterministicEndToEnd) {
  auto run_once = [] {
    Pipeline p;
    ClassAwarePruner pruner(p.pruner_config());
    const PruneRunResult res = pruner.run(p.model, p.data.train, p.data.test);
    return std::tuple{res.final_accuracy, res.report.params_after,
                      res.iterations.size()};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace capr::core
