// Zero-allocation regression tests for the compiled serving hot path.
//
// tensor/alloc_stats.h counts every float-buffer allocation event
// (Tensor construction, capacity-growing Tensor::reset, ScratchArena
// growth). The contract: after ExecutionPlan::warm() every buffer the
// steady state needs exists, so repeated run_ref calls allocate NOTHING,
// and a running InferenceServer allocates exactly one float buffer per
// request (the per-request logits handed to the client) — any other
// growth is a regression in plan scratch pre-sizing or worker scratch
// reuse.
#include "tensor/alloc_stats.h"

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "compile/plan.h"
#include "models/builders.h"
#include "serve/server.h"
#include "serve/session.h"
#include "tensor/gemm_tiled.h"
#include "tensor/gemm_tune.h"
#include "tensor/rng.h"

namespace capr::serve {
namespace {

models::BuildConfig small_cfg() {
  models::BuildConfig cfg;
  cfg.num_classes = 4;
  cfg.input_size = 8;
  cfg.width_mult = 0.5f;
  return cfg;
}

Tensor random_batch(const Shape& in, int64_t n, uint64_t seed) {
  Tensor x({n, in[0], in[1], in[2]});
  Rng rng(seed);
  rng.fill_normal(x, 0.0f, 1.0f);
  return x;
}

Tensor random_sample(const Shape& in, uint64_t seed) {
  Tensor x({in[0], in[1], in[2]});
  Rng rng(seed);
  rng.fill_normal(x, 0.0f, 1.0f);
  return x;
}

// Direct compiled path: warm once, then steady-state run_ref performs
// zero float allocations under either GEMM kernel, at max batch and at
// smaller batches (shrinking never reallocates).
TEST(ServeAllocTest, CompiledRunRefIsAllocationFreeAfterWarm) {
  for (GemmKernel kernel : {GemmKernel::kReference, GemmKernel::kTiled}) {
    GemmKernelScope scope(kernel);
    SessionOptions opts;
    opts.mode = SessionOptions::Mode::kCompiled;
    const InferenceSession session(models::make_model("resnet20", small_cfg()), opts);
    ASSERT_NE(session.plan(), nullptr);

    constexpr int64_t kMaxBatch = 4;
    nn::InferScratch scratch;
    session.warm(scratch, kMaxBatch);

    // Every tensor the measured region touches is created up front.
    const Tensor full = random_batch(session.input_shape(), kMaxBatch, 11);
    const Tensor single = random_batch(session.input_shape(), 1, 12);
    session.run_ref(full, scratch);    // settle any first-touch growth
    session.run_ref(single, scratch);

    const uint64_t before = float_alloc_count();
    for (int i = 0; i < 16; ++i) {
      session.run_ref(full, scratch);
      session.run_ref(single, scratch);
    }
    const uint64_t after = float_alloc_count();
    EXPECT_EQ(after, before) << "kernel=" << (kernel == GemmKernel::kTiled ? "tiled" : "reference")
                             << ": compiled steady state allocated " << (after - before)
                             << " float buffer(s)";
  }
}

// Same zero-alloc contract under a non-default tuning table: warm()
// pre-sizes scratch from the RESOLVED per-class config (including the
// larger whole-A packing split-N demands), not from the default one, so
// an installed tuning table must not reintroduce steady-state growth.
TEST(ServeAllocTest, CompiledRunRefIsAllocationFreeUnderTunedConfig) {
  auto table = std::make_shared<GemmTuningTable>();
  table->host = host_fingerprint();
  GemmTuneEntry entry;
  entry.present = true;
  entry.cfg = {40, 64, 4, GemmParallel::kSplitN};  // non-default on purpose
  for (auto& slot : table->entries) slot = entry;

  GemmKernelScope kernel(GemmKernel::kTiled);
  GemmTuningScope tuning(table);
  SessionOptions opts;
  opts.mode = SessionOptions::Mode::kCompiled;
  const InferenceSession session(models::make_model("resnet20", small_cfg()), opts);
  ASSERT_NE(session.plan(), nullptr);

  constexpr int64_t kMaxBatch = 4;
  nn::InferScratch scratch;
  session.warm(scratch, kMaxBatch);

  const Tensor full = random_batch(session.input_shape(), kMaxBatch, 13);
  const Tensor single = random_batch(session.input_shape(), 1, 14);
  session.run_ref(full, scratch);
  session.run_ref(single, scratch);

  const uint64_t before = float_alloc_count();
  for (int i = 0; i < 16; ++i) {
    session.run_ref(full, scratch);
    session.run_ref(single, scratch);
  }
  EXPECT_EQ(float_alloc_count(), before)
      << "steady state allocated under a tuned (split-N, mc=40/kc=64/mr=4) config — "
      << "warm() is pre-sizing from the default config instead of the resolved one";
}

// Contrast: the interpreted path constructs fresh intermediate tensors
// on every layer call, so it allocates on every run even when warm.
// This is the overhead the compiled plan's pre-sized slots eliminate —
// if this test starts seeing ZERO interpreted allocations, the counter
// hooks are broken and the compiled zero-alloc test above proves nothing.
TEST(ServeAllocTest, InterpretedRunRefStillAllocatesPerCall) {
  GemmKernelScope scope(GemmKernel::kTiled);
  SessionOptions opts;
  opts.mode = SessionOptions::Mode::kInterpreted;
  const InferenceSession session(models::make_model("tiny", small_cfg()), opts);
  nn::InferScratch scratch;
  const Tensor batch = random_batch(session.input_shape(), 4, 21);
  session.run_ref(batch, scratch);
  session.run_ref(batch, scratch);

  const uint64_t before = float_alloc_count();
  constexpr int kRuns = 16;
  for (int i = 0; i < kRuns; ++i) session.run_ref(batch, scratch);
  EXPECT_GE(float_alloc_count() - before, static_cast<uint64_t>(kRuns))
      << "interpreted forward stopped allocating — alloc-count hooks look dead";
}

// Server steady state: with a warmed single worker, each request costs
// exactly ONE float allocation — the [num_classes] logits tensor handed
// back through the future. max_batch=1 keeps the stacked input at fixed
// capacity so the count is exact rather than an upper bound.
TEST(ServeAllocTest, ServerSteadyStateAllocatesOncePerRequest) {
  GemmKernelScope scope(GemmKernel::kTiled);
  SessionOptions opts;
  opts.mode = SessionOptions::Mode::kCompiled;
  auto session = std::make_shared<const InferenceSession>(
      models::make_model("tiny", small_cfg()), opts);

  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 1;
  cfg.queue_capacity = 64;
  InferenceServer server(session, cfg);

  // Warmup: the worker builds its scratch, warms the plan, and grows the
  // persistent stacked-input tensor on the first request.
  for (int i = 0; i < 4; ++i) {
    auto fut = server.submit(random_sample(session->input_shape(), 30 + i));
    ASSERT_EQ(fut.get().status, RequestStatus::kOk);
  }

  constexpr int kRequests = 12;
  std::vector<Tensor> samples;
  samples.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i)
    samples.push_back(random_sample(session->input_shape(), 100 + i));

  const uint64_t before = float_alloc_count();
  std::vector<std::future<InferResult>> futures;
  futures.reserve(kRequests);
  for (Tensor& s : samples) futures.push_back(server.submit(std::move(s)));
  for (auto& f : futures) EXPECT_EQ(f.get().status, RequestStatus::kOk);
  const uint64_t after = float_alloc_count();

  EXPECT_EQ(after - before, static_cast<uint64_t>(kRequests))
      << "expected exactly one float allocation (the per-request logits) per request";
  server.shutdown();
}

}  // namespace
}  // namespace capr::serve
