// Cross-module integration tests: the full paper pipeline end-to-end,
// rollback semantics, and determinism of complete runs.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pruner.h"
#include "data/synthetic.h"
#include "flops/flops.h"
#include "models/builders.h"
#include "nn/trainer.h"

namespace capr {
namespace {

struct PipelineEnv {
  models::BuildConfig mcfg;
  data::SyntheticCifar data;

  PipelineEnv() {
    mcfg.num_classes = 4;
    mcfg.input_size = 8;
    mcfg.width_mult = 0.5f;
    data::SyntheticCifarConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.train_per_class = 16;
    dcfg.test_per_class = 8;
    dcfg.image_size = 8;
    dcfg.noise_stddev = 0.15f;
    data = data::make_synthetic_cifar(dcfg);
  }

  nn::Model trained(const char* arch = "tiny") const {
    nn::Model m = models::make_model(arch, mcfg);
    nn::TrainConfig tcfg;
    tcfg.epochs = 10;
    tcfg.batch_size = 16;
    tcfg.sgd.lr = 0.05f;
    core::ModifiedLoss reg;
    nn::train(m, data.train, tcfg, &reg);
    return m;
  }
};

TEST(IntegrationTest, ModifiedLossTrainingReachesHighAccuracy) {
  PipelineEnv s;
  nn::Model m = s.trained();
  EXPECT_GT(nn::evaluate(m, s.data.test), 0.85f);
}

TEST(IntegrationTest, RollbackRestoresLastGoodModel) {
  PipelineEnv s;
  nn::Model m = s.trained();
  const float baseline = nn::evaluate(m, s.data.test);
  const int64_t params_before = m.parameter_count();

  core::ClassAwarePrunerConfig cfg;
  cfg.importance.images_per_class = 4;
  cfg.importance.tau_mode = core::TauMode::kQuantile;
  cfg.strategy.mode = core::StrategyMode::kPercentage;
  cfg.strategy.max_fraction_per_iter = 0.5f;  // brutal, guarantees a drop
  cfg.finetune.epochs = 0;                    // no recovery allowed
  cfg.max_accuracy_drop = -1.0f;              // any outcome violates the bound
  cfg.max_iterations = 3;
  cfg.model_factory = [&s] { return models::make_model("tiny", s.mcfg); };

  core::ClassAwarePruner pruner(cfg);
  const core::PruneRunResult res = pruner.run(m, s.data.train, s.data.test);

  EXPECT_NE(res.stop_reason.find("rolled back"), std::string::npos);
  // The violating iteration was undone: shapes and accuracy match baseline.
  EXPECT_EQ(m.parameter_count(), params_before);
  EXPECT_NEAR(nn::evaluate(m, s.data.test), baseline, 1e-6f);
  EXPECT_NEAR(res.final_accuracy, baseline, 1e-6f);
  EXPECT_TRUE(res.iterations.empty());
  EXPECT_DOUBLE_EQ(res.report.pruning_ratio(), 0.0);
}

TEST(IntegrationTest, RollbackAfterSuccessfulIterationsKeepsThem) {
  PipelineEnv s;
  nn::Model m = s.trained();

  core::ClassAwarePrunerConfig cfg;
  cfg.importance.images_per_class = 4;
  cfg.importance.tau_mode = core::TauMode::kQuantile;
  cfg.strategy.mode = core::StrategyMode::kPercentage;
  cfg.strategy.max_fraction_per_iter = 0.15f;
  cfg.finetune.epochs = 2;
  cfg.finetune.batch_size = 16;
  cfg.finetune.sgd.lr = 0.02f;
  cfg.max_accuracy_drop = 0.3f;
  cfg.max_iterations = 4;
  cfg.model_factory = [&s] { return models::make_model("tiny", s.mcfg); };

  core::ClassAwarePruner pruner(cfg);
  const core::PruneRunResult res = pruner.run(m, s.data.train, s.data.test);
  // Whatever the stop reason, the reported model satisfies the bound.
  EXPECT_GE(res.final_accuracy, res.original_accuracy - cfg.max_accuracy_drop - 1e-6f);
  if (!res.iterations.empty()) {
    EXPECT_GT(res.report.pruning_ratio(), 0.0);
  }
}

TEST(IntegrationTest, PrunedModelForwardMatchesCostModel) {
  PipelineEnv s;
  nn::Model m = s.trained();
  core::remove_filters(m, 0, {0, 1, 2});
  const flops::ModelCost cost = flops::count(m);
  EXPECT_EQ(cost.total_params, m.parameter_count());
  // Forward still works on a real batch and is finite.
  const data::Batch b = s.data.test.slice(0, 4);
  const Tensor logits = m.forward(b.images, false);
  for (int64_t i = 0; i < logits.numel(); ++i) EXPECT_FALSE(std::isnan(logits[i]));
}

TEST(IntegrationTest, TwoArchitecturesShareOnePipeline) {
  PipelineEnv s;
  for (const char* arch : {"tiny", "resnet20"}) {
    nn::Model m = s.trained(arch);
    core::ClassAwarePrunerConfig cfg;
    cfg.importance.images_per_class = 3;
    cfg.importance.tau_mode = core::TauMode::kQuantile;
    cfg.strategy.mode = core::StrategyMode::kPercentage;
    cfg.strategy.max_fraction_per_iter = 0.2f;
    cfg.finetune.epochs = 1;
    cfg.finetune.batch_size = 16;
    cfg.max_accuracy_drop = 0.5f;
    cfg.max_iterations = 2;
    core::ClassAwarePruner pruner(cfg);
    const auto res = pruner.run(m, s.data.train, s.data.test);
    EXPECT_GT(res.report.pruning_ratio(), 0.0) << arch;
  }
}

}  // namespace
}  // namespace capr
