#include <gtest/gtest.h>

#include "baselines/activation.h"
#include "baselines/baseline_pruner.h"
#include "baselines/magnitude.h"
#include "baselines/regularized.h"
#include "data/synthetic.h"
#include "models/builders.h"
#include "nn/trainer.h"
#include "test_util.h"

namespace capr::baselines {
namespace {

struct Fixture {
  nn::Model model;
  data::SyntheticCifar data;

  Fixture() {
    models::BuildConfig mcfg;
    mcfg.num_classes = 3;
    mcfg.input_size = 8;
    mcfg.width_mult = 0.5f;
    model = models::make_tiny_cnn(mcfg);
    data::SyntheticCifarConfig dcfg;
    dcfg.num_classes = 3;
    dcfg.train_per_class = 12;
    dcfg.test_per_class = 6;
    dcfg.image_size = 8;
    data = data::make_synthetic_cifar(dcfg);
  }
};

TEST(BalancedSampleTest, OnePerClass) {
  Fixture f;
  const data::Batch b = balanced_sample(f.data.train, 2, 1);
  EXPECT_EQ(b.size(), 6);
  std::vector<int64_t> counts(3, 0);
  for (int64_t lbl : b.labels) ++counts[static_cast<size_t>(lbl)];
  for (int64_t c : counts) EXPECT_EQ(c, 2);
  EXPECT_THROW(balanced_sample(f.data.train, 0, 1), std::invalid_argument);
}

TEST(MatrixRankTest, KnownRanks) {
  const float full[4] = {1, 0, 0, 1};
  EXPECT_EQ(matrix_rank(full, 2, 2, 1e-5f), 2);
  const float rank1[4] = {1, 2, 2, 4};
  EXPECT_EQ(matrix_rank(rank1, 2, 2, 1e-5f), 1);
  const float zero[4] = {0, 0, 0, 0};
  EXPECT_EQ(matrix_rank(zero, 2, 2, 1e-5f), 0);
  const float rect[6] = {1, 0, 2, 0, 1, 3};  // 2x3, rank 2
  EXPECT_EQ(matrix_rank(rect, 2, 3, 1e-5f), 2);
}

TEST(L1CriterionTest, RanksByMagnitude) {
  Fixture f;
  nn::Conv2d* conv = f.model.units[0].conv;
  conv->weight().value.fill(0.0f);
  const int64_t fsz = conv->in_channels() * conv->kernel() * conv->kernel();
  // Filter k gets magnitude k+1.
  for (int64_t k = 0; k < conv->out_channels(); ++k) {
    conv->weight().value[k * fsz] = static_cast<float>(k + 1);
  }
  L1Criterion crit;
  const auto scores = crit.score(f.model, f.data.train);
  for (int64_t k = 0; k + 1 < conv->out_channels(); ++k) {
    EXPECT_LT(scores[0][static_cast<size_t>(k)], scores[0][static_cast<size_t>(k + 1)]);
  }
}

TEST(CriteriaShapesTest, AllCriteriaReturnPerFilterScores) {
  Fixture f;
  L1Criterion l1;
  L2Criterion l2;
  DepGraphCriterion dg_full(true), dg_no(false);
  SSSCriterion sss;
  OrthConvCriterion orth;
  TPPCriterion tpp(2);
  APoZCriterion apoz(2);
  HRankCriterion hrank(2);
  TaylorFOCriterion taylor(2);
  for (Criterion* c : std::initializer_list<Criterion*>{&l1, &l2, &dg_full, &dg_no, &sss,
                                                        &orth, &tpp, &apoz, &hrank, &taylor}) {
    const auto scores = c->score(f.model, f.data.train);
    ASSERT_EQ(scores.size(), f.model.units.size()) << c->name();
    for (size_t u = 0; u < scores.size(); ++u) {
      EXPECT_EQ(scores[u].size(),
                static_cast<size_t>(f.model.units[u].conv->out_channels()))
          << c->name();
      for (float s : scores[u]) {
        EXPECT_GE(s, 0.0f) << c->name();
        EXPECT_FALSE(std::isnan(s)) << c->name();
      }
    }
  }
}

TEST(DepGraphTest, FullGroupingCountsConsumerNorms) {
  Fixture f;
  // Zero everything, then give filter 0 weight only in the CONSUMER's
  // in-channel slice: no-grouping scores it 0, full-grouping > 0.
  f.model.units[0].conv->weight().value.fill(0.0f);
  f.model.units[0].bn->gamma().value.fill(0.0f);
  f.model.units[0].bn->beta().value.fill(0.0f);
  nn::Conv2d* consumer = f.model.units[0].consumers[0].conv;
  consumer->weight().value.fill(0.0f);
  const int64_t kk = consumer->kernel() * consumer->kernel();
  consumer->weight().value[0 * consumer->in_channels() * kk + 0 * kk] = 2.0f;

  DepGraphCriterion no_group(false), full_group(true);
  const auto sn = no_group.score(f.model, f.data.train);
  const auto sf = full_group.score(f.model, f.data.train);
  EXPECT_FLOAT_EQ(sn[0][0], 0.0f);
  EXPECT_GT(sf[0][0], 1.0f);
}

TEST(SSSCriterionTest, ScoresAreGammaMagnitudes) {
  Fixture f;
  f.model.units[0].bn->gamma().value[0] = -0.25f;
  f.model.units[0].bn->gamma().value[1] = 0.75f;
  SSSCriterion sss;
  const auto scores = sss.score(f.model, f.data.train);
  EXPECT_FLOAT_EQ(scores[0][0], 0.25f);
  EXPECT_FLOAT_EQ(scores[0][1], 0.75f);
}

TEST(SSSCriterionTest, RegularizerSparsifiesGammas) {
  Fixture f;
  SSSCriterion sss(0.05f);
  nn::Regularizer* reg = sss.train_regularizer();
  ASSERT_NE(reg, nullptr);
  for (nn::Param* p : f.model.params()) p->zero_grad();
  const float penalty = reg->apply(f.model);
  EXPECT_GT(penalty, 0.0f);  // default gammas are 1.0
  // Gradient pushes positive gammas down.
  EXPECT_GT(f.model.units[0].bn->gamma().grad[0], 0.0f);
}

TEST(APoZTest, DeadChannelGetsLowScore) {
  Fixture f;
  // Kill filter 0 of conv0: its post-ReLU map is all zeros -> score ~0.
  nn::PrunableUnit& u = f.model.units[0];
  const int64_t fsz = u.conv->in_channels() * u.conv->kernel() * u.conv->kernel();
  for (int64_t i = 0; i < fsz; ++i) u.conv->weight().value[i] = 0.0f;
  u.bn->gamma().value[0] = 0.0f;
  u.bn->beta().value[0] = -1.0f;  // pushes pre-ReLU negative
  APoZCriterion apoz(3);
  const auto scores = apoz.score(f.model, f.data.train);
  EXPECT_NEAR(scores[0][0], 0.0f, 1e-5f);
  // Some other channel fires on real data.
  float best = 0.0f;
  for (float s : scores[0]) best = std::max(best, s);
  EXPECT_GT(best, 0.1f);
}

TEST(HRankTest, ConstantMapHasRankOne) {
  Fixture f;
  HRankCriterion hrank(2);
  const auto scores = hrank.score(f.model, f.data.train);
  for (float s : scores[0]) {
    EXPECT_GE(s, 0.0f);
    EXPECT_LE(s, 8.0f);  // bounded by the feature-map side
  }
}

TEST(BaselinePrunerTest, EndToEndWithL1) {
  Fixture f;
  nn::TrainConfig tcfg;
  tcfg.epochs = 8;
  tcfg.batch_size = 12;
  tcfg.sgd.lr = 0.05f;
  nn::train(f.model, f.data.train, tcfg);

  BaselinePrunerConfig cfg;
  cfg.max_fraction_per_iter = 0.2f;
  cfg.max_iterations = 3;
  cfg.max_accuracy_drop = 0.3f;
  cfg.finetune.epochs = 2;
  cfg.finetune.batch_size = 12;
  cfg.finetune.sgd.lr = 0.02f;
  BaselinePruner pruner(cfg);
  L1Criterion crit;
  const BaselineRunResult res = pruner.run(f.model, crit, f.data.train, f.data.test);
  EXPECT_EQ(res.method, "L1");
  EXPECT_GT(res.report.pruning_ratio(), 0.0);
  EXPECT_GT(res.iterations_run, 0);
  EXPECT_FALSE(res.stop_reason.empty());
}

TEST(BaselinePrunerTest, RejectsBadFraction) {
  Fixture f;
  BaselinePrunerConfig cfg;
  cfg.max_fraction_per_iter = 0.0f;
  BaselinePruner pruner(cfg);
  L1Criterion crit;
  EXPECT_THROW(pruner.run(f.model, crit, f.data.train, f.data.test), std::invalid_argument);
}

}  // namespace
}  // namespace capr::baselines
