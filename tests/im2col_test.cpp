#include "tensor/im2col.h"

#include <gtest/gtest.h>

#include <tuple>

#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace capr {
namespace {

/// Direct (definition-level) convolution of one image, for reference.
Tensor naive_conv(const Tensor& image, const Tensor& weight, const ConvGeom& g) {
  const int64_t cout = weight.dim(0);
  const int64_t oh = g.out_h(), ow = g.out_w();
  Tensor out({cout, oh, ow});
  for (int64_t f = 0; f < cout; ++f) {
    for (int64_t y = 0; y < oh; ++y) {
      for (int64_t x = 0; x < ow; ++x) {
        double acc = 0.0;
        for (int64_t c = 0; c < g.in_channels; ++c) {
          for (int64_t kh = 0; kh < g.kernel_h; ++kh) {
            const int64_t iy = y * g.stride + kh - g.padding;
            if (iy < 0 || iy >= g.in_h) continue;
            for (int64_t kw = 0; kw < g.kernel_w; ++kw) {
              const int64_t ix = x * g.stride + kw - g.padding;
              if (ix < 0 || ix >= g.in_w) continue;
              acc += static_cast<double>(image.at({c, iy, ix})) *
                     weight.at({f, c, kh, kw});
            }
          }
        }
        out.at({f, y, x}) = static_cast<float>(acc);
      }
    }
  }
  return out;
}

TEST(ConvGeomTest, OutputSizes) {
  ConvGeom g{3, 32, 32, 3, 3, 1, 1};
  EXPECT_EQ(g.out_h(), 32);
  EXPECT_EQ(g.out_w(), 32);
  g.stride = 2;
  EXPECT_EQ(g.out_h(), 16);
  g.padding = 0;
  EXPECT_EQ(g.out_h(), 15);
}

TEST(ConvGeomTest, ValidationErrors) {
  ConvGeom bad{0, 8, 8, 3, 3, 1, 1};
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  ConvGeom too_big{1, 2, 2, 5, 5, 1, 0};
  EXPECT_THROW(too_big.validate(), std::invalid_argument);
  ConvGeom ok{1, 8, 8, 3, 3, 1, 1};
  EXPECT_NO_THROW(ok.validate());
}

// The paper's Fig. 2: a 1x2x2 filter over a 3x3 input with stride 1
// becomes a 4x9 matrix whose product with the flattened input equals the
// convolution output.
TEST(Im2ColTest, PaperFigure2Example) {
  ConvGeom g{1, 3, 3, 2, 2, 1, 0};
  EXPECT_EQ(g.col_rows(), 4);   // 1 channel * 2*2 kernel
  EXPECT_EQ(g.col_cols(), 4);   // 2x2 output positions
  Tensor image = Tensor::from({1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor weight = Tensor::from({1, 1, 2, 2}, {1, 0, 0, 1});  // picks x[p] + x[p+4]
  Tensor col = im2col(image, g);
  Tensor wmat = weight.reshape({1, 4});
  Tensor out = matmul(wmat, col);
  // Windows: (1,5),(2,6),(4,8),(5,9) summed.
  EXPECT_TRUE(out.allclose(Tensor::from({1, 4}, {6, 8, 12, 14})));
}

TEST(Im2ColTest, ShapeValidation) {
  ConvGeom g{2, 4, 4, 3, 3, 1, 1};
  EXPECT_THROW(im2col(Tensor({1, 4, 4}), g), std::invalid_argument);
  EXPECT_THROW(col2im(Tensor({1, 1}), g), std::invalid_argument);
}

class ConvGeomSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(ConvGeomSweep, GemmLoweringMatchesNaive) {
  const auto [cin, size, kernel, stride, padding] = GetParam();
  ConvGeom g{cin, size, size, kernel, kernel, stride, padding};
  g.validate();
  const int64_t cout = 3;
  Tensor image = testing::random_tensor({cin, size, size}, 7);
  Tensor weight = testing::random_tensor({cout, cin, kernel, kernel}, 8);
  Tensor col = im2col(image, g);
  Tensor out = matmul(weight.reshape({cout, g.col_rows()}), col)
                   .reshape({cout, g.out_h(), g.out_w()});
  EXPECT_TRUE(out.allclose(naive_conv(image, weight, g), 1e-4f));
}

TEST_P(ConvGeomSweep, Col2ImIsAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> for all x, y — the defining property
  // of the adjoint, which is exactly what the conv backward needs.
  const auto [cin, size, kernel, stride, padding] = GetParam();
  ConvGeom g{cin, size, size, kernel, kernel, stride, padding};
  g.validate();
  Tensor x = testing::random_tensor({cin, size, size}, 21);
  Tensor y = testing::random_tensor({g.col_rows(), g.col_cols()}, 22);
  const Tensor cx = im2col(x, g);
  const Tensor ay = col2im(y, g);
  double lhs = 0.0, rhs = 0.0;
  for (int64_t i = 0; i < cx.numel(); ++i) lhs += static_cast<double>(cx[i]) * y[i];
  for (int64_t i = 0; i < x.numel(); ++i) rhs += static_cast<double>(x[i]) * ay[i];
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

INSTANTIATE_TEST_SUITE_P(Geometries, ConvGeomSweep,
                         ::testing::Values(std::tuple{1, 5, 3, 1, 1}, std::tuple{3, 8, 3, 1, 1},
                                           std::tuple{2, 7, 3, 2, 1}, std::tuple{4, 6, 1, 1, 0},
                                           std::tuple{2, 9, 5, 2, 2}, std::tuple{1, 4, 2, 2, 0},
                                           std::tuple{3, 10, 3, 3, 0}));

}  // namespace
}  // namespace capr
