// ExecutionPlan verifier: every healthy plan lints clean, and every
// class of corrupted IR is rejected with its specific, stable E-PLAN-*
// code. Corruptions are built by copying a real compiled plan and
// tampering through PlanTestAccess — the verifier must catch them
// without crashing (it is the last line of defence before a bad plan
// would serve traffic, so it can assume nothing).
#include "compile/verifier.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "compile/compiler.h"
#include "compile/plan.h"
#include "graph/graph.h"
#include "models/builders.h"
#include "nn/conv2d.h"
#include "nn/dropout.h"
#include "nn/linear.h"

namespace capr::compile {
namespace {

models::BuildConfig small_cfg() {
  models::BuildConfig cfg;
  cfg.num_classes = 4;
  cfg.input_size = 8;
  cfg.width_mult = 0.5f;
  return cfg;
}

/// All passes off: steps correspond 1:1 to (non-dropout) graph nodes,
/// which keeps each corruption surgical.
CompileOptions no_passes() {
  CompileOptions opts;
  opts.fold_batchnorm = false;
  opts.fuse_epilogues = false;
  opts.prepack_weights = false;
  return opts;
}

struct Compiled {
  nn::Model model;
  graph::ModuleGraph graph;
  ExecutionPlan plan;  // mutable copy of the compiled plan, for tampering
};

Compiled compiled(const std::string& arch, const CompileOptions& opts) {
  Compiled c{models::make_model(arch, small_cfg()), {}, {}};
  c.graph = graph::ModuleGraph::build(c.model);
  const CompileResult result = compile(c.graph, opts);
  EXPECT_NE(result.plan, nullptr);
  if (result.plan) c.plan = *result.plan;
  return c;
}

// ---- healthy plans ---------------------------------------------------------

TEST(PlanVerifierTest, AllGoldenArchsLintClean) {
  const std::vector<std::string> archs = {"vgg11",    "vgg13",    "vgg16",
                                          "vgg19",    "resnet20", "resnet32",
                                          "resnet44", "resnet56", "tiny"};
  for (const std::string& arch : archs) {
    for (const CompileOptions& opts : {CompileOptions{}, no_passes()}) {
      Compiled c = compiled(arch, opts);
      const PlanLint lint = lint_plan(c.plan, c.graph);
      EXPECT_TRUE(lint.ok()) << arch << ":\n" << lint.to_string();
    }
  }
}

// Dropout elision is the one legal aliasing: the plan skips the node and
// the verifier accepts the slot forwarding around it.
TEST(PlanVerifierTest, DropoutElisionLintsClean) {
  nn::Model model;
  model.arch = "custom-dropout";
  model.input_shape = {3, 8, 8};
  model.num_classes = 4;
  model.net = std::make_unique<nn::Sequential>();
  model.net->add(std::make_unique<nn::Conv2d>(3, 4, 3, 1, 1, /*bias=*/true));
  model.net->add(std::make_unique<nn::Dropout>(0.5f));
  model.net->add(std::make_unique<nn::Flatten>());
  model.net->add(std::make_unique<nn::Linear>(4 * 8 * 8, 4));

  const graph::ModuleGraph g = graph::ModuleGraph::build(model);
  const CompileResult result = compile(g, no_passes());
  ASSERT_NE(result.plan, nullptr);
  ASSERT_EQ(result.plan->steps().size(), 3u);  // dropout elided
  const PlanLint lint = lint_plan(*result.plan, g);
  EXPECT_TRUE(lint.ok()) << lint.to_string();
}

// ---- corrupted-plan classes ------------------------------------------------

TEST(PlanVerifierTest, UseBeforeDefIsRejected) {
  Compiled c = compiled("tiny", no_passes());
  std::vector<Step>& steps = PlanTestAccess::steps(c.plan);
  ASSERT_GE(steps.size(), 2u);
  // An early step reads the slot only the final step writes.
  steps[0].in0 = steps.back().out;
  const PlanLint lint = lint_plan(c.plan, c.graph);
  ASSERT_FALSE(lint.ok());
  EXPECT_TRUE(lint.has(PlanDiagCode::kUseBeforeDef)) << lint.to_string();
}

TEST(PlanVerifierTest, MultiWriterIsRejected) {
  Compiled c = compiled("tiny", no_passes());
  std::vector<Step>& steps = PlanTestAccess::steps(c.plan);
  ASSERT_GE(steps.size(), 2u);
  steps[1].out = steps[0].out;
  const PlanLint lint = lint_plan(c.plan, c.graph);
  ASSERT_FALSE(lint.ok());
  EXPECT_TRUE(lint.has(PlanDiagCode::kMultiWriter)) << lint.to_string();
}

TEST(PlanVerifierTest, BadAliasIsRejected) {
  Compiled c = compiled("tiny", no_passes());
  std::vector<Step>& steps = PlanTestAccess::steps(c.plan);
  ASSERT_GE(steps.size(), 3u);
  // steps[2] consumes steps[1]'s output; retarget it onto steps[0]'s —
  // a defined slot (so def-before-use passes) holding the wrong value.
  ASSERT_EQ(steps[2].in0, steps[1].out);
  steps[2].in0 = steps[0].out;
  const PlanLint lint = lint_plan(c.plan, c.graph);
  ASSERT_FALSE(lint.ok());
  EXPECT_TRUE(lint.has(PlanDiagCode::kBadAlias)) << lint.to_string();
}

TEST(PlanVerifierTest, ReorderedStepsAreRejected) {
  Compiled c = compiled("tiny", no_passes());
  std::vector<Step>& steps = PlanTestAccess::steps(c.plan);
  ASSERT_GE(steps.size(), 2u);
  ASSERT_EQ(steps[1].in0, steps[0].out);  // adjacent dependent pair
  std::swap(steps[0], steps[1]);
  const PlanLint lint = lint_plan(c.plan, c.graph);
  ASSERT_FALSE(lint.ok());
  EXPECT_TRUE(lint.has(PlanDiagCode::kStepOrder)) << lint.to_string();
}

TEST(PlanVerifierTest, UndersizedScratchIsRejected) {
  Compiled c = compiled("tiny", CompileOptions{});  // prepacked convs
  ASSERT_GT(c.plan.scratch_floats(), 0);
  PlanTestAccess::scratch_floats(c.plan) = c.plan.scratch_floats() - 1;
  const PlanLint lint = lint_plan(c.plan, c.graph);
  ASSERT_FALSE(lint.ok());
  EXPECT_TRUE(lint.has(PlanDiagCode::kScratchUndersized)) << lint.to_string();
}

TEST(PlanVerifierTest, WrongPanelShapeIsRejected) {
  Compiled c = compiled("tiny", CompileOptions{});
  std::vector<Step>& steps = PlanTestAccess::steps(c.plan);
  Step* conv = nullptr;
  for (Step& s : steps) {
    if (s.kind == StepKind::kConv && s.prepacked) conv = &s;
  }
  ASSERT_NE(conv, nullptr);
  conv->packed_w.depth += 1;  // strips no longer match the weight layout
  const PlanLint lint = lint_plan(c.plan, c.graph);
  ASSERT_FALSE(lint.ok());
  EXPECT_TRUE(lint.has(PlanDiagCode::kPanelShape)) << lint.to_string();
}

TEST(PlanVerifierTest, WrongLinearPanelShapeIsRejected) {
  Compiled c = compiled("tiny", CompileOptions{});
  std::vector<Step>& steps = PlanTestAccess::steps(c.plan);
  Step* linear = nullptr;
  for (Step& s : steps) {
    if (s.kind == StepKind::kLinear && s.prepacked && s.packed_in.finite) linear = &s;
  }
  ASSERT_NE(linear, nullptr);
  linear->packed_in.panels.resize(linear->packed_in.panels.size() - 1);
  const PlanLint lint = lint_plan(c.plan, c.graph);
  ASSERT_FALSE(lint.ok());
  EXPECT_TRUE(lint.has(PlanDiagCode::kPanelShape)) << lint.to_string();
}

TEST(PlanVerifierTest, SpuriousFallbackIsRejected) {
  Compiled c = compiled("tiny", no_passes());
  std::vector<Step>& steps = PlanTestAccess::steps(c.plan);
  Step* conv = nullptr;
  for (Step& s : steps) {
    if (s.kind == StepKind::kConv) conv = &s;
  }
  ASSERT_NE(conv, nullptr);
  // Claim an interpreted fallback on a node without interventions.
  conv->kind = StepKind::kInterpreted;
  conv->layer = c.graph.node(conv->nodes.front()).layer;
  const PlanLint lint = lint_plan(c.plan, c.graph);
  ASSERT_FALSE(lint.ok());
  EXPECT_TRUE(lint.has(PlanDiagCode::kSpuriousFallback)) << lint.to_string();
}

// The converse direction: a node whose layer NEEDS the fallback (active
// interventions, applied after compilation) must not be lowered natively.
TEST(PlanVerifierTest, MissingFallbackIsRejected) {
  Compiled c = compiled("tiny", no_passes());
  ASSERT_FALSE(c.model.units.empty());
  nn::Layer* point = c.model.units[0].score_point;
  ASSERT_NE(point, nullptr);
  point->instrument().channel_scale.assign(
      static_cast<size_t>(c.model.units[0].conv->out_channels()), 0.5f);
  const PlanLint lint = lint_plan(c.plan, c.graph);
  point->instrument().channel_scale.clear();
  ASSERT_FALSE(lint.ok());
  EXPECT_TRUE(lint.has(PlanDiagCode::kSpuriousFallback)) << lint.to_string();
}

TEST(PlanVerifierTest, BadOutputSlotIsRejected) {
  Compiled c = compiled("tiny", no_passes());
  PlanTestAccess::output_slot(c.plan) = c.plan.slot_count() + 5;
  PlanLint lint = lint_plan(c.plan, c.graph);
  ASSERT_FALSE(lint.ok());
  EXPECT_TRUE(lint.has(PlanDiagCode::kBadOutput)) << lint.to_string();

  // A slot that exists but is never written is equally rejected.
  PlanTestAccess::num_slots(c.plan) = c.plan.slot_count() + 6;
  lint = lint_plan(c.plan, c.graph);
  ASSERT_FALSE(lint.ok());
  EXPECT_TRUE(lint.has(PlanDiagCode::kBadOutput)) << lint.to_string();
}

TEST(PlanVerifierTest, WrongOutShapeIsRejected) {
  Compiled c = compiled("tiny", no_passes());
  std::vector<Step>& steps = PlanTestAccess::steps(c.plan);
  ASSERT_FALSE(steps.empty());
  ASSERT_FALSE(steps[0].out_shape.empty());
  steps[0].out_shape[0] += 1;
  const PlanLint lint = lint_plan(c.plan, c.graph);
  ASSERT_FALSE(lint.ok());
  EXPECT_TRUE(lint.has(PlanDiagCode::kShapeDisagree)) << lint.to_string();
}

// Deleting a step elides a node that is NOT an inference identity — the
// aliasing-legality rule dropout elision relies on must reject it.
TEST(PlanVerifierTest, ElidingANonIdentityNodeIsRejected) {
  Compiled c = compiled("tiny", no_passes());
  std::vector<Step>& steps = PlanTestAccess::steps(c.plan);
  ASSERT_GE(steps.size(), 2u);
  steps.erase(steps.begin());
  const PlanLint lint = lint_plan(c.plan, c.graph);
  ASSERT_FALSE(lint.ok());
  EXPECT_TRUE(lint.has(PlanDiagCode::kBadAlias)) << lint.to_string();
}

// Garbage node ids must become findings, never crashes.
TEST(PlanVerifierTest, CorruptNodeIdsDoNotCrash) {
  Compiled c = compiled("tiny", no_passes());
  std::vector<Step>& steps = PlanTestAccess::steps(c.plan);
  ASSERT_FALSE(steps.empty());
  steps[0].nodes = {graph::NodeId{9999}};
  PlanLint lint;
  ASSERT_NO_THROW(lint = lint_plan(c.plan, c.graph));
  ASSERT_FALSE(lint.ok());
  EXPECT_TRUE(lint.has(PlanDiagCode::kSlotRange)) << lint.to_string();
}

// ---- stable codes and wiring ----------------------------------------------

TEST(PlanVerifierTest, CodeStringsAreStable) {
  EXPECT_STREQ(to_string(PlanDiagCode::kSlotRange), "E-PLAN-SLOT");
  EXPECT_STREQ(to_string(PlanDiagCode::kUseBeforeDef), "E-PLAN-USE-BEFORE-DEF");
  EXPECT_STREQ(to_string(PlanDiagCode::kMultiWriter), "E-PLAN-MULTI-WRITER");
  EXPECT_STREQ(to_string(PlanDiagCode::kBadAlias), "E-PLAN-ALIAS");
  EXPECT_STREQ(to_string(PlanDiagCode::kStepOrder), "E-PLAN-ORDER");
  EXPECT_STREQ(to_string(PlanDiagCode::kShapeDisagree), "E-PLAN-SHAPE");
  EXPECT_STREQ(to_string(PlanDiagCode::kScratchUndersized), "E-PLAN-SCRATCH");
  EXPECT_STREQ(to_string(PlanDiagCode::kPanelShape), "E-PLAN-PANEL");
  EXPECT_STREQ(to_string(PlanDiagCode::kSpuriousFallback), "E-PLAN-FALLBACK");
  EXPECT_STREQ(to_string(PlanDiagCode::kBadOutput), "E-PLAN-OUTPUT");
}

TEST(PlanVerifierTest, DiagFormatNamesStepAndNode) {
  PlanDiag d;
  d.code = PlanDiagCode::kStepOrder;
  d.step = 4;
  d.node = 7;
  d.message = "example";
  EXPECT_EQ(d.format(), "[E-PLAN-ORDER] step 4, node 7: example");
}

// compile() runs the verifier on every plan it emits; a clean compile
// therefore implies an empty lint report.
TEST(PlanVerifierTest, CompileNeverReturnsARejectedPlan) {
  const nn::Model model = models::make_model("resnet20", small_cfg());
  const graph::ModuleGraph g = graph::ModuleGraph::build(model);
  const CompileResult result = compile(g, CompileOptions{});
  ASSERT_NE(result.plan, nullptr);
  EXPECT_TRUE(result.lint.empty());
  EXPECT_TRUE(lint_plan(*result.plan, g).ok());
}

}  // namespace
}  // namespace capr::compile
