// PruneHistory: the index-renumbering bookkeeping behind rollback and
// pruned-checkpoint replay. The subtle part is that every surgery
// renumbers the surviving filters, so current-index selections must be
// translated back to original indices exactly.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/surgeon.h"
#include "models/builders.h"
#include "test_util.h"

namespace capr::core {
namespace {

nn::Model two_unit_model() {
  models::BuildConfig cfg;
  cfg.num_classes = 4;
  cfg.input_size = 8;
  cfg.width_mult = 1.0f;  // conv0: 32 filters, conv1: 64 filters
  return models::make_tiny_cnn(cfg);
}

TEST(PruneHistoryTest, StartsWithAllKept) {
  nn::Model m = two_unit_model();
  PruneHistory h(m);
  EXPECT_EQ(h.kept(0).size(), static_cast<size_t>(m.units[0].conv->out_channels()));
  EXPECT_TRUE(h.removed_original()[0].empty());
  EXPECT_TRUE(h.removed_original()[1].empty());
}

TEST(PruneHistoryTest, SingleRoundMapsIdentically) {
  nn::Model m = two_unit_model();
  PruneHistory h(m);
  h.apply({{0, {1, 3, 5}}});
  EXPECT_EQ(h.removed_original()[0], (std::vector<int64_t>{1, 3, 5}));
}

TEST(PruneHistoryTest, RenumberingAcrossRounds) {
  nn::Model m = two_unit_model();
  PruneHistory h(m);
  // Round 1: remove original indices {1, 3}. Survivors: 0,2,4,5,...
  h.apply({{0, {1, 3}}});
  // Round 2, current indices {1, 2} are original {2, 4}.
  h.apply({{0, {1, 2}}});
  EXPECT_EQ(h.removed_original()[0], (std::vector<int64_t>{1, 2, 3, 4}));
}

TEST(PruneHistoryTest, MatchesRealSurgeryExactly) {
  // Prune a live model in two rounds and replay the history onto a fresh
  // copy: both must produce identical weights.
  models::BuildConfig cfg;
  cfg.num_classes = 4;
  cfg.input_size = 8;
  cfg.width_mult = 1.0f;
  nn::Model live = models::make_model("tiny", cfg);
  PruneHistory h(live);

  const std::vector<UnitSelection> round1{{0, {0, 7}}, {1, {2}}};
  apply_selection(live, round1);
  h.apply(round1);
  const std::vector<UnitSelection> round2{{0, {1, 4}}, {1, {0, 5}}};
  apply_selection(live, round2);
  h.apply(round2);

  nn::Model fresh = models::make_model("tiny", cfg);
  const auto removed = h.removed_original();
  for (size_t u = 0; u < removed.size(); ++u) {
    if (!removed[u].empty()) remove_filters(fresh, u, removed[u]);
  }
  for (size_t u = 0; u < live.units.size(); ++u) {
    EXPECT_TRUE(fresh.units[u].conv->weight().value.allclose(
        live.units[u].conv->weight().value, 0.0f))
        << "unit " << u;
  }
  const Tensor x = capr::testing::random_tensor({2, 3, 8, 8}, 5);
  EXPECT_TRUE(fresh.forward(x, false).allclose(live.forward(x, false), 1e-5f));
}

TEST(PruneHistoryTest, SnapshotRestoreIsTransactional) {
  nn::Model m = two_unit_model();
  PruneHistory h(m);
  h.apply({{0, {2}}});
  const auto snap = h.snapshot();
  h.apply({{0, {0, 1}}});
  EXPECT_EQ(h.removed_original()[0].size(), 3u);
  h.restore(snap);
  EXPECT_EQ(h.removed_original()[0], (std::vector<int64_t>{2}));
}

TEST(PruneHistoryTest, RejectsOutOfRangeCurrentIndex) {
  nn::Model m = two_unit_model();
  PruneHistory h(m);
  const int64_t f = m.units[0].conv->out_channels();
  EXPECT_THROW(h.apply({{0, {f}}}), std::out_of_range);
  EXPECT_THROW(h.apply({{0, {-1}}}), std::out_of_range);
}

TEST(PruneHistoryTest, FilterRangeErrorNamesUnitAndLiveCount) {
  nn::Model m = two_unit_model();
  PruneHistory h(m);
  try {
    h.apply({{1, {99}}});
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unit 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("filter index 99"), std::string::npos) << msg;
    EXPECT_NE(msg.find("64 live filters"), std::string::npos) << msg;
  }
}

TEST(PruneHistoryTest, LiveCountInDiagnosticTracksEarlierRounds) {
  nn::Model m = two_unit_model();
  PruneHistory h(m);
  h.apply({{0, {0, 1}}});  // 32 -> 30 live
  try {
    h.apply({{0, {30}}});
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("30 live filters"), std::string::npos) << e.what();
  }
}

TEST(PruneHistoryTest, RejectsUnknownUnitIndexWithCount) {
  nn::Model m = two_unit_model();
  PruneHistory h(m);
  try {
    h.apply({{5, {0}}});
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unit index 5"), std::string::npos) << msg;
    EXPECT_NE(msg.find("2 units"), std::string::npos) << msg;
  }
}

TEST(PruneHistoryTest, RejectsUnsortedOrDuplicateFilters) {
  // Erasing back-to-front silently removes the wrong originals unless
  // the list is strictly ascending; both orders must be hard errors
  // BEFORE any state change.
  nn::Model m = two_unit_model();
  PruneHistory h(m);
  EXPECT_THROW(h.apply({{0, {3, 1}}}), std::invalid_argument);
  EXPECT_THROW(h.apply({{0, {2, 2}}}), std::invalid_argument);
  EXPECT_TRUE(h.removed_original()[0].empty());
}

TEST(PruneHistoryTest, RangeFailureIsTransactionalPerUnit) {
  // A selection with one bad index must not partially erase the unit:
  // all indices are validated before the first erase.
  nn::Model m = two_unit_model();
  PruneHistory h(m);
  EXPECT_THROW(h.apply({{0, {0, 1, 99}}}), std::out_of_range);
  EXPECT_TRUE(h.removed_original()[0].empty());
}

}  // namespace
}  // namespace capr::core
