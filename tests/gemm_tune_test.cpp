// Tuning-subsystem tests: shape classifier stability, table parsing with
// every E-TUNE-* failure path pinned to its code, deterministic
// serialisation, scope/resolution semantics — and the load-bearing
// kernel contract: the tiled GEMM's output is bitwise INVARIANT to the
// tuning config (mc/kc/mr/strategy) and the worker count, for every
// variant, including remainder shapes and accumulation, and end-to-end
// through compiled forward passes of every architecture, dense and
// pruned. That invariance is what lets a tuning table change speed
// without ever changing bits.
#include "tensor/gemm_tune.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "compile/compiler.h"
#include "compile/plan.h"
#include "graph/graph.h"
#include "models/builders.h"
#include "tensor/gemm_tiled.h"
#include "tensor/parallel.h"
#include "tensor/rng.h"
#include "tune/corpus.h"

namespace capr {
namespace {

// ---- shape classifier -------------------------------------------------------

TEST(GemmShapeClassTest, GeometryPrecedenceIsStable) {
  // short-wide wins over deep when both hold (precedence contract).
  EXPECT_EQ(classify_gemm(GemmVariant::kNN, 8, 1024, 64).geom, GemmShapeGeom::kShortWide);
  EXPECT_EQ(classify_gemm(GemmVariant::kNN, 64, 1024, 8).geom, GemmShapeGeom::kTallSkinny);
  EXPECT_EQ(classify_gemm(GemmVariant::kNN, 64, 256, 64).geom, GemmShapeGeom::kDeep);
  EXPECT_EQ(classify_gemm(GemmVariant::kNN, 64, 64, 64).geom, GemmShapeGeom::kCubic);
}

TEST(GemmShapeClassTest, TiersCutOnFlops) {
  EXPECT_EQ(classify_gemm(GemmVariant::kNN, 64, 64, 64).tier, GemmShapeTier::kTiny);
  EXPECT_EQ(classify_gemm(GemmVariant::kNN, 128, 128, 128).tier, GemmShapeTier::kSmall);
  EXPECT_EQ(classify_gemm(GemmVariant::kNN, 384, 384, 384).tier, GemmShapeTier::kMedium);
  EXPECT_EQ(classify_gemm(GemmVariant::kNN, 4096, 4096, 4096).tier, GemmShapeTier::kLarge);
  // Boundaries are exclusive: 2*256^3 == 2^25 exactly, the first medium.
  EXPECT_EQ(classify_gemm(GemmVariant::kNN, 256, 256, 256).tier, GemmShapeTier::kMedium);
}

TEST(GemmShapeClassTest, IndexAndKeyRoundTrip) {
  std::vector<bool> seen(static_cast<size_t>(kGemmShapeClassCount), false);
  for (int v = 0; v < kGemmVariantCount; ++v) {
    for (int g = 0; g < kGemmGeomCount; ++g) {
      for (int t = 0; t < kGemmTierCount; ++t) {
        GemmShapeClass cls{static_cast<GemmVariant>(v), static_cast<GemmShapeGeom>(g),
                           static_cast<GemmShapeTier>(t)};
        const int idx = cls.index();
        ASSERT_GE(idx, 0);
        ASSERT_LT(idx, kGemmShapeClassCount);
        EXPECT_FALSE(seen[static_cast<size_t>(idx)]) << "index collision at " << idx;
        seen[static_cast<size_t>(idx)] = true;
        GemmShapeClass parsed;
        ASSERT_TRUE(parse_gemm_shape_class(cls.key(), &parsed)) << cls.key();
        EXPECT_TRUE(parsed == cls) << cls.key();
      }
    }
  }
}

TEST(GemmShapeClassTest, ParseRejectsUnknownKeys) {
  GemmShapeClass cls;
  EXPECT_FALSE(parse_gemm_shape_class("nn/short-wide", &cls));
  EXPECT_FALSE(parse_gemm_shape_class("xx/cubic/tiny", &cls));
  EXPECT_FALSE(parse_gemm_shape_class("nn/blobby/tiny", &cls));
  EXPECT_FALSE(parse_gemm_shape_class("nn/cubic/vast", &cls));
  EXPECT_FALSE(parse_gemm_shape_class("", &cls));
}

// ---- config validation ------------------------------------------------------

TEST(GemmTuneConfigTest, ValidatesRangesAndMicroKernel) {
  EXPECT_TRUE(gemm_config_valid(GemmTuneConfig{}));
  for (int64_t mr : legal_gemm_mr()) {
    GemmTuneConfig cfg;
    cfg.mr = mr;
    EXPECT_TRUE(gemm_config_valid(cfg)) << "mr=" << mr;
  }
  GemmTuneConfig bad;
  bad.mc = 0;
  EXPECT_FALSE(gemm_config_valid(bad));
  bad = GemmTuneConfig{};
  bad.mc = kGemmTuneMaxMc + 1;
  EXPECT_FALSE(gemm_config_valid(bad));
  bad = GemmTuneConfig{};
  bad.kc = kGemmTuneMinKc - 1;
  EXPECT_FALSE(gemm_config_valid(bad));
  bad = GemmTuneConfig{};
  bad.mr = 5;
  std::string why;
  EXPECT_FALSE(gemm_config_valid(bad, &why));
  EXPECT_NE(why.find("mr"), std::string::npos) << why;
}

TEST(GemmTuneConfigTest, DefaultKeepsHistoricalThreadingThreshold) {
  // Below 2*M*K*N = 2^23 the historical dispatch ran serial, above split-M.
  EXPECT_EQ(default_gemm_config(GemmVariant::kNN, 64, 64, 64).strategy,
            GemmParallel::kNoParallel);
  EXPECT_EQ(default_gemm_config(GemmVariant::kNN, 256, 256, 256).strategy,
            GemmParallel::kSplitM);
  const GemmTuneConfig def = default_gemm_config(GemmVariant::kNN, 256, 256, 256);
  EXPECT_EQ(def.mc, 72);
  EXPECT_EQ(def.kc, 256);
  EXPECT_EQ(def.mr, 6);
}

// ---- table parsing: every E-TUNE-* path -------------------------------------

std::string table_json(const std::string& host, const std::string& entry_fields) {
  return std::string("{\"schema\": \"") + kGemmTuneSchema + "\", \"host\": \"" + host +
         "\", \"entries\": [" + entry_fields + "]}";
}

std::string entry_json(const std::string& cls, int64_t mc, int64_t kc, int64_t mr,
                       const std::string& strategy) {
  return "{\"class\": \"" + cls + "\", \"mc\": " + std::to_string(mc) +
         ", \"kc\": " + std::to_string(kc) + ", \"mr\": " + std::to_string(mr) +
         ", \"strategy\": \"" + strategy + "\"}";
}

TEST(GemmTuningParseTest, AcceptsMinimalValidTable) {
  GemmTuningTable t;
  const TuneStatus s = parse_gemm_tuning(
      table_json("h", entry_json("nn/cubic/tiny", 72, 256, 6, "split-m")), &t);
  ASSERT_TRUE(s.ok()) << s.format();
  EXPECT_EQ(t.host, "h");
  EXPECT_EQ(t.present_count(), 1);
  GemmShapeClass cls;
  ASSERT_TRUE(parse_gemm_shape_class("nn/cubic/tiny", &cls));
  const GemmTuneEntry* e = t.find(cls);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->cfg.mc, 72);
  EXPECT_EQ(e->cfg.strategy, GemmParallel::kSplitM);
}

TEST(GemmTuningParseTest, MalformedJsonIsParseError) {
  GemmTuningTable t;
  EXPECT_EQ(parse_gemm_tuning("{\"schema\": ", &t).code, TuneCode::kParse);
  EXPECT_EQ(parse_gemm_tuning("", &t).code, TuneCode::kParse);
  // A non-object root never reaches schema validation.
  EXPECT_EQ(parse_gemm_tuning("[1, 2]", &t).code, TuneCode::kParse);
}

TEST(GemmTuningParseTest, WrongSchemaIsSchemaError) {
  GemmTuningTable t;
  const TuneStatus s = parse_gemm_tuning(
      "{\"schema\": \"capr-gemm-tune-v0\", \"host\": \"h\", \"entries\": []}", &t);
  EXPECT_EQ(s.code, TuneCode::kSchema);
  EXPECT_NE(s.format().find("E-TUNE-SCHEMA"), std::string::npos) << s.format();
}

TEST(GemmTuningParseTest, UnknownClassKeyIsClassError) {
  GemmTuningTable t;
  EXPECT_EQ(parse_gemm_tuning(
                table_json("h", entry_json("nn/wobbly/tiny", 72, 256, 6, "split-m")), &t)
                .code,
            TuneCode::kClass);
}

TEST(GemmTuningParseTest, DuplicateClassIsClassError) {
  GemmTuningTable t;
  const std::string two = entry_json("nn/cubic/tiny", 72, 256, 6, "split-m") + ", " +
                          entry_json("nn/cubic/tiny", 36, 128, 4, "no-parallel");
  EXPECT_EQ(parse_gemm_tuning(table_json("h", two), &t).code, TuneCode::kClass);
}

TEST(GemmTuningParseTest, OutOfRangeMcKcIsRangeError) {
  GemmTuningTable t;
  EXPECT_EQ(parse_gemm_tuning(
                table_json("h", entry_json("nn/cubic/tiny", 0, 256, 6, "split-m")), &t)
                .code,
            TuneCode::kRange);
  EXPECT_EQ(parse_gemm_tuning(
                table_json("h", entry_json("nn/cubic/tiny", 9000, 256, 6, "split-m")), &t)
                .code,
            TuneCode::kRange);
  EXPECT_EQ(parse_gemm_tuning(
                table_json("h", entry_json("nn/cubic/tiny", 72, 4, 6, "split-m")), &t)
                .code,
            TuneCode::kRange);
  EXPECT_EQ(parse_gemm_tuning(
                table_json("h", entry_json("nn/cubic/tiny", 72, 9000, 6, "split-m")), &t)
                .code,
            TuneCode::kRange);
}

TEST(GemmTuningParseTest, IllegalMicroKernelIsMicroError) {
  GemmTuningTable t;
  const TuneStatus s = parse_gemm_tuning(
      table_json("h", entry_json("nn/cubic/tiny", 72, 256, 5, "split-m")), &t);
  EXPECT_EQ(s.code, TuneCode::kMicro);
  EXPECT_NE(s.format().find("E-TUNE-MICRO"), std::string::npos) << s.format();
}

TEST(GemmTuningParseTest, UnknownStrategyIsStrategyError) {
  GemmTuningTable t;
  EXPECT_EQ(parse_gemm_tuning(
                table_json("h", entry_json("nn/cubic/tiny", 72, 256, 6, "split-q")), &t)
                .code,
            TuneCode::kStrategy);
}

TEST(GemmTuningLoadTest, MissingFileIsIoError) {
  GemmTuningTable t;
  const TuneStatus s = load_gemm_tuning("/nonexistent/capr-tune-table.json", &t);
  EXPECT_EQ(s.code, TuneCode::kIo);
  EXPECT_NE(s.format().find("E-TUNE-IO"), std::string::npos) << s.format();
}

TEST(GemmTuningLoadTest, HostMismatchIsHostErrorButStillParses) {
  const std::string path = testing::TempDir() + "/capr_tune_host_mismatch.json";
  {
    std::ofstream out(path);
    out << table_json("some-other-machine x64",
                      entry_json("nn/cubic/tiny", 36, 128, 4, "no-parallel"));
  }
  GemmTuningTable t;
  const TuneStatus s = load_gemm_tuning(path, &t, /*check_host=*/true);
  EXPECT_EQ(s.code, TuneCode::kHost);
  // The table is still fully parsed so callers can inspect or force it.
  EXPECT_EQ(t.present_count(), 1);
  EXPECT_EQ(t.host, "some-other-machine x64");
  // Without the host check the same file loads clean.
  GemmTuningTable t2;
  EXPECT_TRUE(load_gemm_tuning(path, &t2, /*check_host=*/false).ok());
  std::remove(path.c_str());
}

// ---- serialisation ----------------------------------------------------------

TEST(GemmTuningJsonTest, RoundTripIsByteStable) {
  GemmTuningTable t;
  t.host = host_fingerprint();
  GemmTuneEntry e;
  e.present = true;
  e.cfg = {36, 128, 4, GemmParallel::kSplitN};
  e.rep_m = 8;
  e.rep_k = 72;
  e.rep_n = 64;
  e.gflops = 15.883;
  e.baseline_gflops = 6.72;
  t.set(classify_gemm(GemmVariant::kNN, 8, 72, 64), e);
  e.cfg = {144, 512, 8, GemmParallel::kNoParallel};
  t.set(classify_gemm(GemmVariant::kNT, 8, 128, 10), e);

  const std::string json = to_json(t);
  GemmTuningTable back;
  ASSERT_TRUE(parse_gemm_tuning(json, &back).ok());
  EXPECT_EQ(back.host, t.host);
  EXPECT_EQ(back.present_count(), t.present_count());
  // parse -> dump reproduces the exact bytes (committed tables diff clean).
  EXPECT_EQ(to_json(back), json);
}

// ---- installation + resolution ----------------------------------------------

TEST(GemmTuningResolveTest, ScopeInstallsAndRestores) {
  const GemmTuneConfig tuned{36, 128, 4, GemmParallel::kNoParallel};
  const GemmTuneConfig def = resolve_gemm_config(GemmVariant::kNN, 256, 256, 256);
  {
    GemmTuningScope scope(single_entry_table(GemmVariant::kNN, 256, 256, 256, tuned));
    EXPECT_TRUE(resolve_gemm_config(GemmVariant::kNN, 256, 256, 256) == tuned);
    // Other classes still fall back to the default.
    EXPECT_TRUE(resolve_gemm_config(GemmVariant::kNT, 256, 256, 256) ==
                default_gemm_config(GemmVariant::kNT, 256, 256, 256));
  }
  EXPECT_TRUE(resolve_gemm_config(GemmVariant::kNN, 256, 256, 256) == def);
}

// ---- bitwise invariance -----------------------------------------------------

std::vector<float> fill(int64_t count, uint64_t seed) {
  std::vector<float> v(static_cast<size_t>(count));
  Rng rng(seed);
  for (float& x : v) x = rng.uniform(-2.0f, 2.0f);
  return v;
}

/// Runs one variant under `cfg` pinned by a one-entry table; returns C.
std::vector<float> run_variant(GemmVariant v, int64_t M, int64_t K, int64_t N,
                               const GemmTuneConfig& cfg, bool accumulate) {
  const std::vector<float> a = fill(v == GemmVariant::kTN ? K * M : M * K, 7);
  const std::vector<float> b = fill(v == GemmVariant::kNT ? N * K : K * N, 8);
  std::vector<float> c = fill(M * N, 9);  // accumulate starts from this
  if (!accumulate) std::fill(c.begin(), c.end(), 0.0f);
  GemmScratch scratch;
  GemmTuningScope scope(single_entry_table(v, M, K, N, cfg));
  switch (v) {
    case GemmVariant::kNN:
      gemm_tiled(a.data(), b.data(), c.data(), M, K, N, accumulate, &scratch);
      break;
    case GemmVariant::kNT:
      gemm_tiled_nt(a.data(), b.data(), c.data(), M, K, N, accumulate, &scratch);
      break;
    case GemmVariant::kTN:
      gemm_tiled_tn(a.data(), b.data(), c.data(), M, K, N, accumulate, &scratch);
      break;
  }
  return c;
}

TEST(GemmTuneBitwiseTest, OutputInvariantToConfigAcrossVariants) {
  // Remainder-heavy shapes: partial strips, partial panels, K spanning
  // multiple k-blocks under small kc.
  const int64_t shapes[][3] = {{7, 19, 33}, {1, 300, 17}, {72, 72, 16}, {13, 520, 48}};
  const GemmTuneConfig configs[] = {
      {36, 64, 4, GemmParallel::kNoParallel},  {16, 8, 8, GemmParallel::kSplitM},
      {72, 256, 8, GemmParallel::kSplitN},     {1, 8, 4, GemmParallel::kSplitM},
      {144, 512, 6, GemmParallel::kSplitN},
  };
  set_num_threads(4);
  for (GemmVariant v : {GemmVariant::kNN, GemmVariant::kNT, GemmVariant::kTN}) {
    for (const auto& s : shapes) {
      for (bool accumulate : {false, true}) {
        const std::vector<float> ref = run_variant(
            v, s[0], s[1], s[2], default_gemm_config(v, s[0], s[1], s[2]), accumulate);
        for (const GemmTuneConfig& cfg : configs) {
          const std::vector<float> got = run_variant(v, s[0], s[1], s[2], cfg, accumulate);
          ASSERT_EQ(std::memcmp(ref.data(), got.data(), ref.size() * sizeof(float)), 0)
              << to_string(v) << " " << s[0] << "x" << s[1] << "x" << s[2]
              << " acc=" << accumulate << " mc=" << cfg.mc << " kc=" << cfg.kc
              << " mr=" << cfg.mr << " " << to_string(cfg.strategy);
        }
      }
    }
  }
  set_num_threads(0);
}

TEST(GemmTuneBitwiseTest, OneVsManyWorkersUnderEveryStrategy) {
  const int64_t M = 200, K = 300, N = 150;
  for (GemmParallel strat :
       {GemmParallel::kNoParallel, GemmParallel::kSplitM, GemmParallel::kSplitN}) {
    const GemmTuneConfig cfg{48, 96, 8, strat};
    set_num_threads(1);
    const std::vector<float> serial = run_variant(GemmVariant::kNN, M, K, N, cfg, false);
    for (int threads : {2, 4, 7}) {
      set_num_threads(threads);
      const std::vector<float> parallel =
          run_variant(GemmVariant::kNN, M, K, N, cfg, false);
      ASSERT_EQ(std::memcmp(serial.data(), parallel.data(), serial.size() * sizeof(float)),
                0)
          << to_string(strat) << " threads=" << threads;
    }
    set_num_threads(0);
  }
}

// A table whose every class carries an aggressively non-default config.
std::shared_ptr<const GemmTuningTable> everything_tuned() {
  auto t = std::make_shared<GemmTuningTable>();
  t->host = host_fingerprint();
  for (int v = 0; v < kGemmVariantCount; ++v) {
    for (int g = 0; g < kGemmGeomCount; ++g) {
      for (int ti = 0; ti < kGemmTierCount; ++ti) {
        GemmTuneEntry e;
        e.present = true;
        e.cfg = {40, 64, 4, GemmParallel::kSplitN};
        t->set(GemmShapeClass{static_cast<GemmVariant>(v), static_cast<GemmShapeGeom>(g),
                              static_cast<GemmShapeTier>(ti)},
               e);
      }
    }
  }
  return t;
}

/// Compiled forward pass of `model`; compile happens inside the caller's
/// tuning scope, so prepacked weights carry the scope's resolved configs.
Tensor compiled_forward(const nn::Model& model, const Tensor& batch) {
  const graph::ModuleGraph g = graph::ModuleGraph::build(model);
  if (!g.ok()) ADD_FAILURE() << "graph build failed";
  const compile::CompileResult result = compile::compile(g, compile::CompileOptions{});
  if (!result.plan) {
    ADD_FAILURE() << "compile failed";
    return Tensor();
  }
  nn::InferScratch scratch;
  result.plan->warm(scratch, batch.dim(0));
  return result.plan->run(batch, scratch);
}

TEST(GemmTuneBitwiseTest, CompiledForwardInvariantAcrossAllArchsDenseAndPruned) {
  models::BuildConfig cfg;
  cfg.num_classes = 4;
  cfg.input_size = 8;
  cfg.width_mult = 0.5f;
  set_num_threads(4);
  for (const std::string& arch : tune::corpus_archs()) {
    for (bool pruned : {false, true}) {
      nn::Model model = models::make_model(arch, cfg);
      if (pruned) tune::prune_some_filters(model, 1);
      Tensor batch({2, cfg.input_channels, cfg.input_size, cfg.input_size});
      Rng rng(42);
      rng.fill_normal(batch, 0.0f, 1.0f);

      Tensor baseline, tuned;
      {
        GemmTuningScope scope(nullptr);  // untuned: defaults everywhere
        baseline = compiled_forward(model, batch);
      }
      {
        GemmTuningScope scope(everything_tuned());
        tuned = compiled_forward(model, batch);
      }
      ASSERT_EQ(baseline.numel(), tuned.numel()) << arch;
      ASSERT_EQ(std::memcmp(baseline.data(), tuned.data(),
                            static_cast<size_t>(baseline.numel()) * sizeof(float)),
                0)
          << arch << (pruned ? " (pruned)" : " (dense)")
          << ": tuned compiled forward is not bitwise identical to untuned";
    }
  }
  set_num_threads(0);
}

}  // namespace
}  // namespace capr
