// Graph-compiler differential harness.
//
// The load-bearing contract (compile/plan.h): with BN folding OFF, a
// compiled ExecutionPlan produces BITWISE-identical logits to the
// interpreted Model::forward_inference under either GEMM kernel, for
// every architecture, dense or pruned — epilogue fusion and weight
// pre-packing are exact transformations. BN folding is the single
// eps-bounded pass. Per-node fallback: layers with active interventions
// run interpreted inside the plan, never the whole model. compile_test
// runs under the release, ASan, UBSan and TSan CI lanes.
#include "compile/compiler.h"

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "compile/dump.h"
#include "compile/plan.h"
#include "core/surgeon.h"
#include "models/builders.h"
#include "nn/dropout.h"
#include "nn/pooling.h"
#include "serve/session.h"
#include "tensor/gemm_tiled.h"
#include "tensor/rng.h"
#include "test_util.h"
#include "verify/compile_diff.h"

namespace capr::compile {
namespace {

const std::vector<std::string>& all_archs() {
  static const std::vector<std::string> archs = {
      "vgg11",    "vgg13",    "vgg16",    "vgg19", "resnet20",
      "resnet32", "resnet44", "resnet56", "tiny"};
  return archs;
}

models::BuildConfig small_cfg() {
  models::BuildConfig cfg;
  cfg.num_classes = 4;
  cfg.input_size = 8;
  cfg.width_mult = 0.5f;
  return cfg;
}

Tensor random_batch(const Shape& in, int64_t n, uint64_t seed) {
  Tensor x({n, in[0], in[1], in[2]});
  Rng rng(seed);
  rng.fill_normal(x, 0.0f, 1.0f);
  return x;
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

/// Deterministic pseudo-random prune of roughly a quarter of every
/// prunable unit's filters (keyed by `seed` so property sweeps vary).
void prune_some_filters(nn::Model& model, uint64_t seed) {
  for (size_t u = 0; u < model.units.size(); ++u) {
    const int64_t n = model.units[u].conv->out_channels();
    if (n < 4) continue;
    std::vector<int64_t> filters;
    for (int64_t c = 0; c < n; ++c) {
      if ((static_cast<uint64_t>(c) * 2654435761u + seed * 40503u + u) % 4 == 0) {
        filters.push_back(c);
      }
    }
    if (filters.empty()) filters.push_back(static_cast<int64_t>(seed % n));
    if (static_cast<int64_t>(filters.size()) >= n) filters.pop_back();
    core::remove_filters(model, u, filters);
  }
}

std::shared_ptr<const ExecutionPlan> must_compile(const nn::Model& model,
                                                  const CompileOptions& opts) {
  const graph::ModuleGraph g = graph::ModuleGraph::build(model);
  CompileResult result = compile(g, opts);
  EXPECT_TRUE(result.errors.empty());
  EXPECT_NE(result.plan, nullptr);
  return result.plan;
}

class CompileArchSweep : public ::testing::TestWithParam<std::string> {};

// The headline: every arch x {dense, pruned} x {reference, tiled},
// fold OFF -> bitwise identity with the interpreted forward.
TEST_P(CompileArchSweep, CompiledMatchesInterpretedBitwise) {
  for (const bool pruned : {false, true}) {
    nn::Model model = models::make_model(GetParam(), small_cfg());
    if (pruned) prune_some_filters(model, 1);
    const Tensor x = random_batch(model.input_shape, 3, 31);
    CompileOptions opts;
    opts.fold_batchnorm = false;
    for (const GemmKernel kernel : {GemmKernel::kReference, GemmKernel::kTiled}) {
      const GemmKernelScope scope(kernel);
      const verify::PlanDiff d = verify::compile_and_diff(model, opts, x);
      EXPECT_TRUE(d.bitwise) << GetParam() << (pruned ? " pruned" : " dense") << " kernel "
                             << static_cast<int>(kernel) << ": " << d.detail;
    }
  }
}

// BN folding re-derives weights in double precision: outputs agree to a
// small relative epsilon, not bitwise.
TEST_P(CompileArchSweep, FoldedPlanWithinEps) {
  nn::Model model = models::make_model(GetParam(), small_cfg());
  const Tensor x = random_batch(model.input_shape, 3, 37);
  CompileOptions opts;  // fold_batchnorm = true
  for (const GemmKernel kernel : {GemmKernel::kReference, GemmKernel::kTiled}) {
    const GemmKernelScope scope(kernel);
    const verify::PlanDiff d = verify::compile_and_diff(model, opts, x);
    ASSERT_TRUE(d.shape_match) << d.detail;
    EXPECT_LT(d.max_rel_err, 2e-3) << GetParam() << " kernel " << static_cast<int>(kernel)
                                   << ": " << d.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(Archs, CompileArchSweep, ::testing::ValuesIn(all_archs()));

// Randomized prune-then-compile property sweep (PR 1 oracle spirit):
// arbitrary legal prunes never break either contract tier.
TEST(CompilePropertyTest, RandomizedPruneThenCompile) {
  for (const char* arch : {"resnet20", "vgg11"}) {
    for (uint64_t seed = 0; seed < 4; ++seed) {
      nn::Model model = models::make_model(arch, small_cfg());
      prune_some_filters(model, seed);
      const Tensor x = random_batch(model.input_shape, 2, 100 + seed);
      for (const GemmKernel kernel : {GemmKernel::kReference, GemmKernel::kTiled}) {
        const GemmKernelScope scope(kernel);
        CompileOptions exact;
        exact.fold_batchnorm = false;
        const verify::PlanDiff d = verify::compile_and_diff(model, exact, x);
        EXPECT_TRUE(d.bitwise) << arch << " seed " << seed << ": " << d.detail;
        const verify::PlanDiff folded = verify::compile_and_diff(model, CompileOptions{}, x);
        EXPECT_LT(folded.max_rel_err, 2e-3) << arch << " seed " << seed << ": " << folded.detail;
      }
    }
  }
}

// Fusing the activation into the producer's write-back must not change a
// single bit relative to the unfused plan.
TEST(CompilePassTest, EpilogueFusionIsExact) {
  nn::Model model = models::make_model("resnet20", small_cfg());
  const Tensor x = random_batch(model.input_shape, 2, 41);
  CompileOptions fused;
  fused.fold_batchnorm = false;
  CompileOptions unfused = fused;
  unfused.fuse_epilogues = false;
  for (const GemmKernel kernel : {GemmKernel::kReference, GemmKernel::kTiled}) {
    const GemmKernelScope scope(kernel);
    const auto pf = must_compile(model, fused);
    const auto pu = must_compile(model, unfused);
    ASSERT_TRUE(pf && pu);
    EXPECT_GT(pf->fused_epilogues(), 0);
    EXPECT_EQ(pu->fused_epilogues(), 0);
    EXPECT_LT(pf->steps().size(), pu->steps().size());
    nn::InferScratch s1, s2;
    EXPECT_TRUE(bitwise_equal(pf->run(x, s1), pu->run(x, s2)))
        << "kernel " << static_cast<int>(kernel);
  }
}

// Pre-packing only moves the pack step to compile time: identical strips
// and panels feed the identical micro-kernel sequence.
TEST(CompilePassTest, WeightPrepackIsExact) {
  nn::Model model = models::make_model("vgg11", small_cfg());
  const Tensor x = random_batch(model.input_shape, 2, 43);
  CompileOptions packed;
  packed.fold_batchnorm = false;
  CompileOptions unpacked = packed;
  unpacked.prepack_weights = false;
  for (const GemmKernel kernel : {GemmKernel::kReference, GemmKernel::kTiled}) {
    const GemmKernelScope scope(kernel);
    const auto pp = must_compile(model, packed);
    const auto pn = must_compile(model, unpacked);
    ASSERT_TRUE(pp && pn);
    EXPECT_GT(pp->prepacked_floats(), 0);
    EXPECT_EQ(pn->prepacked_floats(), 0);
    nn::InferScratch s1, s2;
    EXPECT_TRUE(bitwise_equal(pp->run(x, s1), pn->run(x, s2)))
        << "kernel " << static_cast<int>(kernel);
  }
}

// BN folding collapses conv+bn pairs into single steps and records how
// many it folded.
TEST(CompilePassTest, FoldReducesStepCount) {
  nn::Model model = models::make_model("vgg11", small_cfg());
  const auto folded = must_compile(model, CompileOptions{});
  CompileOptions off;
  off.fold_batchnorm = false;
  const auto plain = must_compile(model, off);
  ASSERT_TRUE(folded && plain);
  EXPECT_GT(folded->folded_batchnorms(), 0);
  EXPECT_EQ(plain->folded_batchnorms(), 0);
  EXPECT_EQ(plain->steps().size(),
            folded->steps().size() + static_cast<size_t>(folded->folded_batchnorms()));
  for (const Step& s : folded->steps()) EXPECT_NE(s.kind, StepKind::kBatchNorm);
}

// A layer with an active read-only intervention cannot be lowered
// natively; it must become a per-node interpreted step — and the rest of
// the model still compiles (never whole-model fallback).
TEST(CompileFallbackTest, InterventionFallsBackPerNode) {
  nn::Model model = models::make_model("tiny", small_cfg());
  ASSERT_FALSE(model.units.empty());
  nn::Layer* point = model.units[0].score_point;
  ASSERT_NE(point, nullptr);
  point->instrument().channel_scale.assign(
      static_cast<size_t>(model.units[0].conv->out_channels()), 0.5f);

  CompileOptions opts;
  opts.fold_batchnorm = false;
  const graph::ModuleGraph g = graph::ModuleGraph::build(model);
  const CompileResult result = compile(g, opts);
  ASSERT_NE(result.plan, nullptr);
  EXPECT_EQ(result.plan->interpreted_steps(), 1);
  EXPECT_EQ(result.interpreted_nodes, 1);
  EXPECT_FALSE(result.plan->shareable());
  EXPECT_GT(static_cast<int>(result.plan->steps().size()), 1);

  // The interpreted forward applies the same interventions -> bitwise.
  const Tensor x = random_batch(model.input_shape, 2, 47);
  const verify::PlanDiff d = verify::diff_against_interpreted(model, *result.plan, x);
  point->instrument().channel_scale.clear();
  EXPECT_TRUE(d.bitwise) << d.detail;
}

// LeakyReLU carries a slope through fusion; exercised on a hand-built
// chain (the stock archs only use plain ReLU).
TEST(CompilePassTest, LeakyReluEpilogueFusedExact) {
  nn::Model model;
  model.arch = "custom-leaky";
  model.input_shape = {3, 8, 8};
  model.num_classes = 4;
  model.net = std::make_unique<nn::Sequential>();
  model.net->add(std::make_unique<nn::Conv2d>(3, 8, 3, 1, 1, /*bias=*/true));
  model.net->add(std::make_unique<nn::LeakyReLU>(0.1f));
  model.net->add(std::make_unique<nn::AvgPool2d>(2));
  model.net->add(std::make_unique<nn::Flatten>());
  model.net->add(std::make_unique<nn::Linear>(8 * 4 * 4, 4));

  const Tensor x = random_batch(model.input_shape, 3, 53);
  CompileOptions fused;
  fused.fold_batchnorm = false;
  CompileOptions unfused = fused;
  unfused.fuse_epilogues = false;
  for (const GemmKernel kernel : {GemmKernel::kReference, GemmKernel::kTiled}) {
    const GemmKernelScope scope(kernel);
    const auto pf = must_compile(model, fused);
    ASSERT_TRUE(pf);
    EXPECT_EQ(pf->fused_epilogues(), 1);
    ASSERT_FALSE(pf->steps().empty());
    EXPECT_EQ(pf->steps()[0].act, Epilogue::kLeakyReLU);
    EXPECT_FLOAT_EQ(pf->steps()[0].alpha, 0.1f);
    const verify::PlanDiff d = verify::compile_and_diff(model, fused, x);
    EXPECT_TRUE(d.bitwise) << "kernel " << static_cast<int>(kernel) << ": " << d.detail;
    const auto pu = must_compile(model, unfused);
    nn::InferScratch s1, s2;
    EXPECT_TRUE(bitwise_equal(pf->run(x, s1), pu->run(x, s2)));
  }
}

// One immutable plan, four threads, private scratches: every thread sees
// the single-threaded result bit for bit. Runs under the TSan CI lane.
TEST(CompileConcurrencyTest, SharedPlanFourThreadsBitwise) {
  const GemmKernelScope scope(GemmKernel::kTiled);
  nn::Model model = models::make_model("resnet20", small_cfg());
  CompileOptions opts;
  opts.fold_batchnorm = false;
  const auto plan = must_compile(model, opts);
  ASSERT_TRUE(plan);

  const Tensor x = random_batch(model.input_shape, 4, 59);
  nn::InferScratch ref_scratch;
  const Tensor want = plan->run(x, ref_scratch);

  constexpr int kThreads = 4;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      nn::InferScratch scratch;
      plan->warm(scratch, x.dim(0));
      for (int round = 0; round < 8; ++round) {
        if (!bitwise_equal(plan->run_ref(x, scratch), want)) {
          ++mismatches[static_cast<size_t>(t)];
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[static_cast<size_t>(t)], 0);
}

// Session-level mode contract: kCompiled is bitwise vs the interpreted
// session; kCompiledFolded is eps-accurate and actually folds.
TEST(CompileSessionTest, SessionModesHonourContract) {
  const models::BuildConfig cfg = small_cfg();
  serve::SessionOptions interp;
  interp.mode = serve::SessionOptions::Mode::kInterpreted;
  const serve::InferenceSession base(models::make_model("resnet20", cfg), interp);
  const serve::InferenceSession compiled(models::make_model("resnet20", cfg));
  serve::SessionOptions fopts;
  fopts.mode = serve::SessionOptions::Mode::kCompiledFolded;
  const serve::InferenceSession folded(models::make_model("resnet20", cfg), fopts);

  EXPECT_EQ(base.plan(), nullptr);
  ASSERT_NE(compiled.plan(), nullptr);
  ASSERT_NE(folded.plan(), nullptr);
  EXPECT_EQ(compiled.plan()->folded_batchnorms(), 0);
  EXPECT_GT(folded.plan()->folded_batchnorms(), 0);

  const Tensor x = random_batch(base.input_shape(), 3, 61);
  for (const GemmKernel kernel : {GemmKernel::kReference, GemmKernel::kTiled}) {
    const GemmKernelScope scope(kernel);
    nn::InferScratch s1, s2, s3;
    const Tensor want = base.run(x, s1);
    EXPECT_TRUE(bitwise_equal(compiled.run(x, s2), want));
    EXPECT_TRUE(capr::testing::expect_allclose(folded.run(x, s3), want, 1e-3f, 2e-3f));
  }
}

// The dropout node disappears from compiled plans (inference identity);
// slot aliasing keeps the data flow intact.
TEST(CompileLoweringTest, DropoutIsElided) {
  nn::Model model;
  model.arch = "custom-dropout";
  model.input_shape = {3, 8, 8};
  model.num_classes = 4;
  model.net = std::make_unique<nn::Sequential>();
  model.net->add(std::make_unique<nn::Conv2d>(3, 4, 3, 1, 1, /*bias=*/true));
  model.net->add(std::make_unique<nn::Dropout>(0.5f));
  model.net->add(std::make_unique<nn::Flatten>());
  model.net->add(std::make_unique<nn::Linear>(4 * 8 * 8, 4));

  CompileOptions opts;
  opts.fold_batchnorm = false;
  const auto plan = must_compile(model, opts);
  ASSERT_TRUE(plan);
  EXPECT_EQ(plan->steps().size(), 3u);  // conv, flatten, linear
  for (const Step& s : plan->steps()) EXPECT_NE(s.kind, StepKind::kInterpreted);
  const Tensor x = random_batch(model.input_shape, 2, 67);
  const verify::PlanDiff d = verify::diff_against_interpreted(model, *plan, x);
  EXPECT_TRUE(d.bitwise) << d.detail;
}

// ---- golden plan dumps ------------------------------------------------------

std::string read_golden_plan(const std::string& arch) {
  const std::string path = std::string(CAPR_GOLDEN_PLAN_DIR) + "/" + arch + ".json";
  std::ifstream in(path);
  if (!in) {
    ADD_FAILURE() << "missing golden plan dump " << path
                  << " (regenerate with: capr-analyze --arch " << arch << " --dump-plan "
                  << path << ")";
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class PlanDumpSweep : public ::testing::TestWithParam<std::string> {};

// The committed goldens were generated with the BuildConfig defaults and
// default CompileOptions (all passes on) — a bare `capr-analyze --arch
// <name> --dump-plan` invocation. Any drift in lowering, pass behaviour,
// step schema, or the structural hash shows up as a diff here and must
// be reviewed by regenerating the golden.
TEST_P(PlanDumpSweep, MatchesGoldenJson) {
  const nn::Model m = models::make_model(GetParam(), models::BuildConfig{});
  const graph::ModuleGraph g = graph::ModuleGraph::build(m);
  ASSERT_TRUE(g.ok()) << g.error()->format();
  const CompileOptions opts;  // all passes on
  const CompileResult result = compile(g, opts);
  ASSERT_NE(result.plan, nullptr);
  EXPECT_EQ(to_json(*result.plan, g, opts, m.arch), read_golden_plan(GetParam()));
}

TEST_P(PlanDumpSweep, DumpIsBitwiseStable) {
  const nn::Model a = models::make_model(GetParam(), models::BuildConfig{});
  const nn::Model b = models::make_model(GetParam(), models::BuildConfig{});
  const graph::ModuleGraph ga = graph::ModuleGraph::build(a);
  const graph::ModuleGraph gb = graph::ModuleGraph::build(b);
  const CompileOptions opts;
  const CompileResult ra = compile(ga, opts);
  const CompileResult rb = compile(gb, opts);
  ASSERT_NE(ra.plan, nullptr);
  ASSERT_NE(rb.plan, nullptr);
  EXPECT_EQ(to_json(*ra.plan, ga, opts, a.arch), to_json(*rb.plan, gb, opts, b.arch));
}

INSTANTIATE_TEST_SUITE_P(AllArchs, PlanDumpSweep, ::testing::ValuesIn(all_archs()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace capr::compile
