// Tests for the paper's Eq. 1/2 cost terms, including the Fig. 2
// weight-reshaping (Toeplitz operator) correctness.
#include "core/modified_loss.h"

#include <gtest/gtest.h>

#include <cmath>

#include "models/builders.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace capr::core {
namespace {

using capr::testing::numerical_grad;
using capr::testing::random_tensor;

TEST(ToeplitzTest, PaperFigure2GeometryAndValues) {
  // Fig. 2: filter 1x2x2 over a 3x3 input, stride 1 -> 4x9 matrix.
  nn::Conv2d conv(1, 1, 2, 1, 0, false);
  conv.weight().value = Tensor::from({1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor t = toeplitz_matrix(conv, 3, 3);
  EXPECT_EQ(t.shape(), (Shape{4, 9}));
  // Row 0: window at (0,0) touches inputs 0,1,3,4.
  EXPECT_TRUE(t.reshape({36}).allclose(Tensor::from({36}, {
      1, 2, 0, 3, 4, 0, 0, 0, 0,   // window (0,0)
      0, 1, 2, 0, 3, 4, 0, 0, 0,   // window (0,1): offset one column
      0, 0, 0, 1, 2, 0, 3, 4, 0,   // window (1,0)
      0, 0, 0, 0, 1, 2, 0, 3, 4})));  // window (1,1)
}

TEST(ToeplitzTest, MultiplyingFlattenedInputEqualsConvolution) {
  nn::Conv2d conv(2, 3, 3, 1, 1, false);
  Rng rng(90);
  rng.fill_normal(conv.weight().value, 0.0f, 0.5f);
  const int64_t h = 5, w = 5;
  Tensor image = random_tensor({1, 2, h, w}, 91);
  const Tensor conv_out = conv.forward(image, false);
  const Tensor t = toeplitz_matrix(conv, h, w);
  const Tensor flat = image.reshape({2 * h * w, 1});
  const Tensor t_out = matmul(t, flat);
  EXPECT_TRUE(t_out.reshape(conv_out.shape()).allclose(conv_out, 1e-4f));
}

TEST(ToeplitzTest, StridedGeometry) {
  nn::Conv2d conv(1, 2, 3, 2, 1, false);
  Rng rng(92);
  rng.fill_normal(conv.weight().value, 0.0f, 0.5f);
  Tensor image = random_tensor({1, 1, 6, 6}, 93);
  const Tensor conv_out = conv.forward(image, false);
  const Tensor t = toeplitz_matrix(conv, 6, 6);
  const Tensor t_out = matmul(t, image.reshape({36, 1}));
  EXPECT_TRUE(t_out.reshape(conv_out.shape()).allclose(conv_out, 1e-4f));
}

TEST(OrthPenaltyTest, ZeroForOrthonormalFilterMatrix) {
  // Two orthonormal filters in a 1x2x2 kernel space.
  nn::Conv2d conv(1, 2, 2, 1, 0, false);
  const float r = 1.0f / std::sqrt(2.0f);
  conv.weight().value = Tensor::from({2, 1, 2, 2}, {r, r, 0, 0, r, -r, 0, 0});
  EXPECT_NEAR(orth_penalty_filter_matrix(conv, nullptr, 0.0f), 0.0f, 1e-5f);
}

TEST(OrthPenaltyTest, PositiveForDuplicatedFilters) {
  nn::Conv2d conv(1, 2, 2, 1, 0, false);
  conv.weight().value = Tensor::from({2, 1, 2, 2}, {0.5f, 0.5f, 0.5f, 0.5f,
                                                    0.5f, 0.5f, 0.5f, 0.5f});
  EXPECT_GT(orth_penalty_filter_matrix(conv, nullptr, 0.0f), 0.5f);
}

TEST(OrthPenaltyTest, GradientMatchesNumerical) {
  nn::Conv2d conv(2, 3, 2, 1, 0, false);
  Rng rng(94);
  rng.fill_normal(conv.weight().value, 0.0f, 0.6f);
  Tensor grad(conv.weight().value.shape());
  orth_penalty_filter_matrix(conv, &grad, 1.0f);
  for (int64_t i = 0; i < conv.weight().value.numel(); i += 3) {
    const float num = numerical_grad(
        [&] { return orth_penalty_filter_matrix(conv, nullptr, 0.0f); },
        conv.weight().value[i]);
    EXPECT_NEAR(grad[i], num, 5e-2f) << "at " << i;
  }
}

TEST(OrthPenaltyTest, ToeplitzAndFilterFormAgreeOnOrder) {
  // Both forms should say the duplicated-filter conv is "less orthogonal"
  // than a near-orthogonal one.
  nn::Conv2d good(1, 2, 2, 1, 0, false);
  const float r = 1.0f / std::sqrt(2.0f);
  good.weight().value = Tensor::from({2, 1, 2, 2}, {r, r, 0, 0, r, -r, 0, 0});
  nn::Conv2d bad(1, 2, 2, 1, 0, false);
  bad.weight().value = Tensor::from({2, 1, 2, 2}, {r, r, 0, 0, r, r, 0, 0});
  EXPECT_LT(orth_penalty_filter_matrix(good, nullptr, 0.0f),
            orth_penalty_filter_matrix(bad, nullptr, 0.0f));
  EXPECT_LT(orth_penalty_toeplitz(good, 4, 4), orth_penalty_toeplitz(bad, 4, 4));
}

TEST(ModifiedLossTest, L1TermValueAndGradient) {
  models::BuildConfig cfg;
  cfg.num_classes = 3;
  cfg.input_size = 8;
  cfg.width_mult = 0.25f;
  nn::Model m = models::make_tiny_cnn(cfg);
  for (nn::Param* p : m.params()) p->zero_grad();

  ModifiedLossConfig lcfg;
  lcfg.lambda1 = 0.1f;
  lcfg.lambda2 = 0.0f;
  ModifiedLoss loss(lcfg);
  const float penalty = loss.apply(m);

  double expected = 0.0;
  m.net->visit([&expected](nn::Layer& l) {
    if (dynamic_cast<nn::Conv2d*>(&l) != nullptr || dynamic_cast<nn::Linear*>(&l) != nullptr) {
      for (nn::Param* p : l.params()) {
        if (p->name == "weight") {
          for (int64_t i = 0; i < p->value.numel(); ++i) expected += std::fabs(p->value[i]);
        }
      }
    }
  });
  EXPECT_NEAR(penalty, 0.1 * expected, 0.1 * expected * 1e-4 + 1e-5);

  // Gradient is lambda1 * sign(w) on conv weights.
  const Tensor& w = m.units[0].conv->weight().value;
  const Tensor& g = m.units[0].conv->weight().grad;
  for (int64_t i = 0; i < w.numel(); i += 7) {
    const float want = w[i] > 0 ? 0.1f : (w[i] < 0 ? -0.1f : 0.0f);
    EXPECT_FLOAT_EQ(g[i], want);
  }
}

TEST(ModifiedLossTest, ZeroLambdasAreNoop) {
  models::BuildConfig cfg;
  cfg.num_classes = 3;
  cfg.input_size = 8;
  nn::Model m = models::make_tiny_cnn(cfg);
  for (nn::Param* p : m.params()) p->zero_grad();
  ModifiedLoss loss(ModifiedLossConfig{.lambda1 = 0.0f, .lambda2 = 0.0f});
  EXPECT_FLOAT_EQ(loss.apply(m), 0.0f);
  for (nn::Param* p : m.params()) {
    for (int64_t i = 0; i < p->grad.numel(); ++i) EXPECT_EQ(p->grad[i], 0.0f);
  }
}

TEST(ModifiedLossTest, L1DrivesWeightsTowardZeroInTraining) {
  // Train a conv on pure noise with strong L1: weights should shrink.
  nn::Conv2d conv(1, 2, 3, 1, 1, false);
  Rng rng(95);
  rng.fill_normal(conv.weight().value, 0.0f, 1.0f);
  const float before = l1_norm(conv.weight().value);
  nn::SGD sgd({.lr = 0.05f, .momentum = 0.0f, .weight_decay = 0.0f});
  for (int step = 0; step < 50; ++step) {
    conv.weight().zero_grad();
    for (int64_t i = 0; i < conv.weight().value.numel(); ++i) {
      conv.weight().grad[i] = conv.weight().value[i] > 0 ? 1.0f : -1.0f;
    }
    sgd.step({&conv.weight()});
  }
  EXPECT_LT(l1_norm(conv.weight().value), before * 0.2f);
}

}  // namespace
}  // namespace capr::core
