// Serving runtime contract tests.
//
// The load-bearing guarantee: InferenceSession::run (and the
// InferenceServer on top of it) produces BITWISE-identical logits to the
// training-side Model::forward(x, false), regardless of GEMM kernel,
// micro-batch composition, worker count, or how many client threads
// share one session. Plus the scheduler semantics: deadline rejection,
// bounded-queue backpressure, graceful shutdown draining accepted work.
// serve_test and serve_queue_test both run under the TSan CI lane.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/surgeon.h"
#include "data/synthetic.h"
#include "models/builders.h"
#include "nn/trainer.h"
#include "serve/server.h"
#include "serve/session.h"
#include "tensor/gemm_tiled.h"
#include "tensor/parallel.h"
#include "tensor/serialize.h"
#include "test_util.h"

namespace capr {
namespace {

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

bool row_equals(const Tensor& logits, int64_t row, const Tensor& single) {
  const int64_t classes = logits.dim(1);
  return single.numel() == classes &&
         std::memcmp(logits.data() + row * classes, single.data(),
                     static_cast<size_t>(classes) * sizeof(float)) == 0;
}

models::BuildConfig small_cfg() {
  models::BuildConfig cfg;
  cfg.num_classes = 4;
  cfg.input_size = 8;
  cfg.width_mult = 0.5f;
  return cfg;
}

Tensor random_batch(const Shape& in, int64_t n, uint64_t seed) {
  Tensor x({n, in[0], in[1], in[2]});
  Rng rng(seed);
  rng.fill_normal(x, 0.0f, 1.0f);
  return x;
}

Tensor sample_of(const Tensor& batch, int64_t i) {
  const int64_t per = batch.numel() / batch.dim(0);
  Tensor s({batch.dim(1), batch.dim(2), batch.dim(3)});
  std::memcpy(s.data(), batch.data() + i * per, static_cast<size_t>(per) * sizeof(float));
  return s;
}

TEST(InferencePathTest, MatchesTrainingForwardBitwise) {
  for (const char* arch : {"tiny", "vgg11", "resnet20"}) {
    for (const GemmKernel kernel : {GemmKernel::kReference, GemmKernel::kTiled}) {
      const GemmKernelScope scope(kernel);
      nn::Model model = models::make_model(arch, small_cfg());
      const Tensor x = random_batch(model.input_shape, 3, 11);
      const Tensor want = model.forward(x, /*training=*/false);
      nn::InferScratch scratch;
      const Tensor got = model.forward_inference(x, scratch);
      EXPECT_TRUE(bitwise_equal(got, want)) << arch << " kernel " << static_cast<int>(kernel);
    }
  }
}

TEST(InferencePathTest, AppliesChannelScaleInterventions) {
  // Read-only interventions (hw emulation) must act on the inference
  // path exactly as on the training path.
  nn::Model model = models::make_model("tiny", small_cfg());
  const Tensor x = random_batch(model.input_shape, 2, 12);
  ASSERT_FALSE(model.units.empty());
  nn::Layer* point = model.units[0].score_point;
  ASSERT_NE(point, nullptr);
  point->instrument().channel_scale.assign(
      static_cast<size_t>(model.units[0].conv->out_channels()), 0.5f);
  const Tensor want = model.forward(x, false);
  nn::InferScratch scratch;
  const Tensor got = model.forward_inference(x, scratch);
  point->instrument().channel_scale.clear();
  EXPECT_TRUE(bitwise_equal(got, want));
}

TEST(InferencePathTest, BatchCompositionInvariance) {
  // A sample's logits must not depend on which other samples share its
  // micro-batch — the property that makes adaptive batching bitwise-safe.
  for (const GemmKernel kernel : {GemmKernel::kReference, GemmKernel::kTiled}) {
    const GemmKernelScope scope(kernel);
    serve::InferenceSession session(models::make_model("resnet20", small_cfg()));
    const Tensor batch = random_batch(session.input_shape(), 6, 13);
    nn::InferScratch scratch;
    const Tensor together = session.run(batch, scratch);
    ASSERT_EQ(together.dim(0), 6);
    for (int64_t i = 0; i < 6; ++i) {
      Tensor one({1, batch.dim(1), batch.dim(2), batch.dim(3)});
      std::memcpy(one.data(), batch.data() + i * one.numel(),
                  static_cast<size_t>(one.numel()) * sizeof(float));
      const Tensor alone = session.run(one, scratch);
      EXPECT_TRUE(row_equals(together, i, alone.reshape({together.dim(1)})))
          << "sample " << i << " kernel " << static_cast<int>(kernel);
    }
  }
}

TEST(InferenceSessionTest, RejectsNonBatchInput) {
  serve::InferenceSession session(models::make_model("tiny", small_cfg()));
  const Shape& in = session.input_shape();
  nn::InferScratch scratch;
  EXPECT_THROW(session.run(Tensor({in[0], in[1], in[2]}), scratch), std::invalid_argument);
}

TEST(InferenceSessionTest, FromCheckpointRejectsWrongArch) {
  nn::Model vgg = models::make_model("vgg11", small_cfg());
  const std::string path = ::testing::TempDir() + "capr_serve_wrongarch.ckpt";
  save_tensor_map(path, vgg.state_dict());
  // resnet20's conv names are absent from a vgg11 checkpoint.
  EXPECT_THROW(serve::InferenceSession::from_checkpoint("resnet20", small_cfg(), path),
               std::runtime_error);
}

// Train a small model, prune it, save the checkpoint, serve it from a
// fresh process-like reload: logits must match the live pruned model
// bit for bit, across kernels and server worker counts.
TEST(ServeEquivalenceTest, TrainPruneSaveServeRoundTrip) {
  models::BuildConfig mcfg = small_cfg();
  data::SyntheticCifarConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.train_per_class = 16;
  dcfg.test_per_class = 4;
  dcfg.image_size = 8;
  const data::SyntheticCifar data = data::make_synthetic_cifar(dcfg);

  nn::Model model = models::make_model("tiny", mcfg);
  nn::TrainConfig tcfg;
  tcfg.epochs = 2;
  tcfg.batch_size = 16;
  tcfg.sgd.lr = 0.05f;
  nn::train(model, data.train, tcfg, nullptr);

  // Prune a couple of filters from the first unit, then checkpoint.
  ASSERT_FALSE(model.units.empty());
  ASSERT_GE(model.units[0].conv->out_channels(), 4);
  core::remove_filters(model, 0, {0, 2});
  const std::string path = ::testing::TempDir() + "capr_serve_pruned.ckpt";
  save_tensor_map(path, model.state_dict());

  const Tensor x = random_batch(model.input_shape, 5, 17);
  for (const GemmKernel kernel : {GemmKernel::kReference, GemmKernel::kTiled}) {
    const GemmKernelScope scope(kernel);
    const Tensor want = model.forward(x, false);

    auto session = std::make_shared<const serve::InferenceSession>(
        serve::InferenceSession::from_checkpoint("tiny", mcfg, path));
    nn::InferScratch scratch;
    EXPECT_TRUE(bitwise_equal(session->run(x, scratch), want));

    for (const int workers : {1, 4}) {
      serve::ServerConfig scfg;
      scfg.workers = workers;
      scfg.max_batch = 4;
      serve::InferenceServer server(session, scfg);
      std::vector<std::future<serve::InferResult>> futs;
      for (int64_t i = 0; i < x.dim(0); ++i) futs.push_back(server.submit(sample_of(x, i)));
      for (int64_t i = 0; i < x.dim(0); ++i) {
        serve::InferResult res = futs[static_cast<size_t>(i)].get();
        ASSERT_EQ(res.status, serve::RequestStatus::kOk) << res.error;
        EXPECT_TRUE(row_equals(want, i, res.output))
            << "row " << i << " workers " << workers << " kernel " << static_cast<int>(kernel);
      }
    }
  }
}

// The headline concurrency guarantee: one shared session, >= 4 client
// threads, outputs bitwise-identical to the single-threaded training
// path. Runs under TSan in CI.
TEST(ServeConcurrencyTest, SharedSessionFourClientsBitwise) {
  const models::BuildConfig cfg = small_cfg();
  nn::Model reference = models::make_model("resnet20", cfg);
  // Same builder + seed -> identical weights in the served copy.
  auto session = std::make_shared<const serve::InferenceSession>(
      serve::InferenceSession(models::make_model("resnet20", cfg)));

  constexpr int kClients = 4;
  constexpr int64_t kPerClient = 8;
  const Tensor x = random_batch(reference.input_shape, kClients * kPerClient, 23);
  const Tensor want = reference.forward(x, false);

  // Direct session sharing: each thread brings its own scratch.
  {
    std::vector<std::thread> threads;
    std::vector<int> mismatches(kClients, 0);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        nn::InferScratch scratch;
        for (int64_t i = c * kPerClient; i < (c + 1) * kPerClient; ++i) {
          Tensor one({1, x.dim(1), x.dim(2), x.dim(3)});
          std::memcpy(one.data(), x.data() + i * one.numel(),
                      static_cast<size_t>(one.numel()) * sizeof(float));
          const Tensor got = session->run(one, scratch);
          if (!row_equals(want, i, got.reshape({want.dim(1)}))) {
            ++mismatches[static_cast<size_t>(c)];
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    for (int c = 0; c < kClients; ++c) EXPECT_EQ(mismatches[static_cast<size_t>(c)], 0);
  }

  // Through the server: 4 concurrent submitting clients, micro-batching on.
  {
    serve::ServerConfig scfg;
    scfg.workers = 2;
    scfg.max_batch = 8;
    serve::InferenceServer server(session, scfg);
    std::vector<std::thread> threads;
    std::vector<int> mismatches(kClients, 0);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        std::vector<std::future<serve::InferResult>> futs;
        for (int64_t i = c * kPerClient; i < (c + 1) * kPerClient; ++i) {
          futs.push_back(server.submit(sample_of(x, i)));
        }
        for (int64_t i = 0; i < kPerClient; ++i) {
          serve::InferResult res = futs[static_cast<size_t>(i)].get();
          if (res.status != serve::RequestStatus::kOk ||
              !row_equals(want, c * kPerClient + i, res.output)) {
            ++mismatches[static_cast<size_t>(c)];
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    for (int c = 0; c < kClients; ++c) EXPECT_EQ(mismatches[static_cast<size_t>(c)], 0);
    const serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.completed, static_cast<uint64_t>(kClients * kPerClient));
    EXPECT_EQ(stats.errored, 0u);
  }
}

// Same 4-client shape, but sweeping every session mode explicitly:
// interpreted and compiled (exact passes only) are bitwise against the
// training forward; the BN-folded plan is eps-bounded. Runs under TSan
// in CI — the shared ExecutionPlan must be safely concurrent.
TEST(ServeConcurrencyTest, FourClientsAcrossAllSessionModes) {
  const models::BuildConfig cfg = small_cfg();
  nn::Model reference = models::make_model("resnet20", cfg);
  constexpr int kClients = 4;
  constexpr int64_t kPerClient = 4;
  const Tensor x = random_batch(reference.input_shape, kClients * kPerClient, 29);
  const Tensor want = reference.forward(x, false);

  for (const serve::SessionOptions::Mode mode :
       {serve::SessionOptions::Mode::kInterpreted, serve::SessionOptions::Mode::kCompiled,
        serve::SessionOptions::Mode::kCompiledFolded}) {
    serve::SessionOptions opts;
    opts.mode = mode;
    auto session = std::make_shared<const serve::InferenceSession>(
        serve::InferenceSession(models::make_model("resnet20", cfg), opts));
    const bool exact = mode != serve::SessionOptions::Mode::kCompiledFolded;

    serve::ServerConfig scfg;
    scfg.workers = 2;
    scfg.max_batch = 8;
    serve::InferenceServer server(session, scfg);
    std::vector<std::thread> threads;
    std::vector<int> mismatches(kClients, 0);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        std::vector<std::future<serve::InferResult>> futs;
        for (int64_t i = c * kPerClient; i < (c + 1) * kPerClient; ++i) {
          futs.push_back(server.submit(sample_of(x, i)));
        }
        for (int64_t i = 0; i < kPerClient; ++i) {
          serve::InferResult res = futs[static_cast<size_t>(i)].get();
          if (res.status != serve::RequestStatus::kOk) {
            ++mismatches[static_cast<size_t>(c)];
            continue;
          }
          const int64_t row = c * kPerClient + i;
          if (exact) {
            if (!row_equals(want, row, res.output)) ++mismatches[static_cast<size_t>(c)];
          } else {
            for (int64_t k = 0; k < want.dim(1); ++k) {
              const float a = want[row * want.dim(1) + k];
              const float b = res.output[k];
              if (std::fabs(b - a) > 1e-3f + 2e-3f * std::fabs(a)) {
                ++mismatches[static_cast<size_t>(c)];
                break;
              }
            }
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    for (int c = 0; c < kClients; ++c) {
      EXPECT_EQ(mismatches[static_cast<size_t>(c)], 0)
          << "client " << c << " mode " << static_cast<int>(mode);
    }
    EXPECT_EQ(server.stats().errored, 0u);
  }
}

TEST(InferenceServerTest, ExpiredDeadlineIsRejectedWithTimeout) {
  auto session = std::make_shared<const serve::InferenceSession>(
      serve::InferenceSession(models::make_model("tiny", small_cfg())));
  serve::InferenceServer server(session, serve::ServerConfig{});
  const Shape& in = session->input_shape();
  Tensor sample({in[0], in[1], in[2]});
  // A deadline already in the past: deterministically rejected when a
  // worker picks the request up, no matter how fast the machine is.
  auto fut = server.submit(sample, serve::InferenceServer::Clock::now() -
                                       std::chrono::milliseconds(1));
  const serve::InferResult res = fut.get();
  EXPECT_EQ(res.status, serve::RequestStatus::kTimeout);
  EXPECT_TRUE(res.output.empty());
  EXPECT_GE(server.stats().timed_out, 1u);
}

TEST(InferenceServerTest, BackpressureRejectsFloodAndServesAccepted) {
  auto session = std::make_shared<const serve::InferenceSession>(
      serve::InferenceSession(models::make_model("tiny", small_cfg())));
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 4;
  cfg.max_batch = 1;
  serve::InferenceServer server(session, cfg);
  const Shape& in = session->input_shape();
  Tensor sample({in[0], in[1], in[2]});

  // Submission is microseconds, inference is milliseconds: flooding a
  // capacity-4 queue MUST shed load.
  std::vector<std::future<serve::InferResult>> accepted;
  int rejected = 0;
  for (int i = 0; i < 200; ++i) {
    auto fut = server.try_submit(sample);
    if (fut.has_value()) {
      accepted.push_back(std::move(*fut));
    } else {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_FALSE(accepted.empty());
  for (auto& fut : accepted) {
    EXPECT_EQ(fut.get().status, serve::RequestStatus::kOk);
  }
  EXPECT_EQ(server.stats().rejected, static_cast<uint64_t>(rejected));
}

TEST(InferenceServerTest, ShutdownDrainsAcceptedWork) {
  auto session = std::make_shared<const serve::InferenceSession>(
      serve::InferenceSession(models::make_model("tiny", small_cfg())));
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 16;
  serve::InferenceServer server(session, cfg);
  const Shape& in = session->input_shape();
  Tensor sample({in[0], in[1], in[2]});

  std::vector<std::future<serve::InferResult>> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(server.submit(sample));
  server.shutdown();
  // Everything accepted before shutdown completes; nothing is dropped.
  for (auto& fut : futs) EXPECT_EQ(fut.get().status, serve::RequestStatus::kOk);
  EXPECT_EQ(server.stats().completed, 8u);

  // And the server refuses new work from then on.
  EXPECT_EQ(server.submit(sample).get().status, serve::RequestStatus::kShutdown);
  auto late = server.try_submit(sample);
  ASSERT_TRUE(late.has_value());
  EXPECT_EQ(late->get().status, serve::RequestStatus::kShutdown);
}

TEST(InferenceServerTest, RejectsWrongSampleShape) {
  auto session = std::make_shared<const serve::InferenceSession>(
      serve::InferenceSession(models::make_model("tiny", small_cfg())));
  serve::InferenceServer server(session, serve::ServerConfig{});
  EXPECT_THROW(server.submit(Tensor({1, 2, 3})), std::invalid_argument);
  EXPECT_THROW(server.try_submit(Tensor({4})), std::invalid_argument);
}

}  // namespace
}  // namespace capr
