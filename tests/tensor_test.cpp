#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "tensor/ops.h"
#include "test_util.h"

namespace capr {
namespace {

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.rank(), 0);
  EXPECT_EQ(t.numel(), 0);
  EXPECT_TRUE(t.empty());
}

TEST(TensorTest, ZeroInitialised) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FillConstructor) {
  Tensor t({4}, 2.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(TensorTest, DataConstructorValidatesSize) {
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1.0f}), std::invalid_argument);
  EXPECT_NO_THROW(Tensor({2, 2}, std::vector<float>(4, 0.0f)));
}

TEST(TensorTest, NegativeExtentRejected) {
  EXPECT_THROW(Tensor({2, -3}), std::invalid_argument);
}

TEST(TensorTest, FromInitializerList) {
  Tensor t = Tensor::from({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.shape(), (Shape{3}));
  EXPECT_EQ(t[1], 2.0f);
}

TEST(TensorTest, MultiDimAccess) {
  Tensor t = Tensor::from({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t.at({0, 0}), 0.0f);
  EXPECT_EQ(t.at({1, 2}), 5.0f);
  t.at({1, 0}) = 9.0f;
  EXPECT_EQ(t[3], 9.0f);
}

TEST(TensorTest, AtBoundsChecked) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at({2, 0}), std::out_of_range);
  EXPECT_THROW(t.at({0, 3}), std::out_of_range);
  EXPECT_THROW(t.at({0}), std::invalid_argument);
}

TEST(TensorTest, DimSupportsNegativeIndex) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.dim(-3), 2);
  EXPECT_THROW(t.dim(3), std::out_of_range);
  EXPECT_THROW(t.dim(-4), std::out_of_range);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t = Tensor::from({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor r = t.reshape({3, 2});
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(r[i], t[i]);
}

TEST(TensorTest, ReshapeInfersExtent) {
  Tensor t({4, 6});
  EXPECT_EQ(t.reshape({-1, 3}).shape(), (Shape{8, 3}));
  EXPECT_EQ(t.reshape({2, -1}).shape(), (Shape{2, 12}));
}

TEST(TensorTest, ReshapeErrors) {
  Tensor t({4, 6});
  EXPECT_THROW(t.reshape({5, 5}), std::invalid_argument);
  EXPECT_THROW(t.reshape({-1, -1}), std::invalid_argument);
  EXPECT_THROW(t.reshape({-1, 7}), std::invalid_argument);
}

TEST(TensorTest, AllClose) {
  Tensor a = Tensor::from({1.0f, 2.0f});
  Tensor b = Tensor::from({1.0f, 2.00001f});
  EXPECT_TRUE(a.allclose(b, 1e-3f));
  EXPECT_FALSE(a.allclose(b, 1e-7f));
  EXPECT_FALSE(a.allclose(Tensor({3})));
}

TEST(TensorTest, StreamOutput) {
  Tensor t = Tensor::from({2}, {1.0f, 2.0f});
  std::ostringstream os;
  os << t;
  EXPECT_NE(os.str().find("[2]"), std::string::npos);
  EXPECT_NE(os.str().find('1'), std::string::npos);
}

TEST(OpsTest, AddSubMul) {
  Tensor a = Tensor::from({1, 2, 3});
  Tensor b = Tensor::from({4, 5, 6});
  EXPECT_TRUE(add(a, b).allclose(Tensor::from({5, 7, 9})));
  EXPECT_TRUE(sub(b, a).allclose(Tensor::from({3, 3, 3})));
  EXPECT_TRUE(mul(a, b).allclose(Tensor::from({4, 10, 18})));
}

TEST(OpsTest, ShapeMismatchThrows) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_THROW(add(a, b), std::invalid_argument);
  EXPECT_THROW(mul(a, b), std::invalid_argument);
}

TEST(OpsTest, InplaceOps) {
  Tensor a = Tensor::from({1, 2});
  add_inplace(a, Tensor::from({10, 20}));
  EXPECT_TRUE(a.allclose(Tensor::from({11, 22})));
  axpy_inplace(a, 2.0f, Tensor::from({1, 1}));
  EXPECT_TRUE(a.allclose(Tensor::from({13, 24})));
  scale_inplace(a, 0.5f);
  EXPECT_TRUE(a.allclose(Tensor::from({6.5, 12})));
}

TEST(OpsTest, ReluAndBackward) {
  Tensor pre = Tensor::from({-1, 0, 2});
  EXPECT_TRUE(relu(pre).allclose(Tensor::from({0, 0, 2})));
  Tensor grad = Tensor::from({5, 5, 5});
  EXPECT_TRUE(relu_backward(grad, pre).allclose(Tensor::from({0, 0, 5})));
}

TEST(OpsTest, AbsSign) {
  Tensor a = Tensor::from({-2, 0, 3});
  EXPECT_TRUE(abs(a).allclose(Tensor::from({2, 0, 3})));
  EXPECT_TRUE(sign(a).allclose(Tensor::from({-1, 0, 1})));
}

TEST(OpsTest, Reductions) {
  Tensor a = Tensor::from({1, -2, 3, -4});
  EXPECT_FLOAT_EQ(sum(a), -2.0f);
  EXPECT_FLOAT_EQ(mean(a), -0.5f);
  EXPECT_FLOAT_EQ(max_value(a), 3.0f);
  EXPECT_FLOAT_EQ(min_value(a), -4.0f);
  EXPECT_EQ(argmax(a), 2);
  EXPECT_FLOAT_EQ(l1_norm(a), 10.0f);
  EXPECT_NEAR(l2_norm(a), std::sqrt(30.0f), 1e-5f);
  EXPECT_EQ(count_near_zero(a, 1.5f), 1);
}

TEST(OpsTest, EmptyReductionsThrow) {
  Tensor e;
  EXPECT_THROW(mean(e), std::invalid_argument);
  EXPECT_THROW(max_value(e), std::invalid_argument);
  EXPECT_THROW(argmax(e), std::invalid_argument);
}

TEST(OpsTest, RowwiseAndColSum) {
  Tensor m = Tensor::from({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor v = Tensor::from({10, 20, 30});
  EXPECT_TRUE(add_rowwise(m, v).allclose(Tensor::from({2, 3}, {11, 22, 33, 14, 25, 36})));
  EXPECT_TRUE(col_sum(m).allclose(Tensor::from({5, 7, 9})));
  EXPECT_THROW(add_rowwise(m, Tensor({2})), std::invalid_argument);
}

TEST(OpsTest, Transpose) {
  Tensor m = Tensor::from({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = transpose(m);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_TRUE(t.allclose(Tensor::from({3, 2}, {1, 4, 2, 5, 3, 6})));
}

}  // namespace
}  // namespace capr
