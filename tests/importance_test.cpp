// Tests for the class-aware importance evaluation (Eqs. 3-7).
#include "core/importance.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "data/synthetic.h"
#include "models/builders.h"
#include "test_util.h"

namespace capr::core {
namespace {

struct Fixture {
  nn::Model model;
  data::SyntheticCifar data;

  Fixture() {
    models::BuildConfig mcfg;
    mcfg.num_classes = 3;
    mcfg.input_size = 8;
    mcfg.width_mult = 0.25f;
    model = models::make_tiny_cnn(mcfg);
    data::SyntheticCifarConfig dcfg;
    dcfg.num_classes = 3;
    dcfg.train_per_class = 8;
    dcfg.test_per_class = 4;
    dcfg.image_size = 8;
    data = data::make_synthetic_cifar(dcfg);
  }
};

TEST(ImportanceTest, ScoresHaveExpectedShapeAndRange) {
  Fixture f;
  ImportanceEvaluator eval(ImportanceConfig{.images_per_class = 4});
  const ImportanceResult res = eval.evaluate(f.model, f.data.train);
  ASSERT_EQ(res.units.size(), 2u);
  EXPECT_EQ(res.num_classes, 3);
  for (const UnitScores& u : res.units) {
    EXPECT_EQ(u.total.size(),
              static_cast<size_t>(f.model.units[u.unit_index].conv->out_channels()));
    ASSERT_EQ(u.per_class.size(), 3u);
    for (size_t f_idx = 0; f_idx < u.total.size(); ++f_idx) {
      EXPECT_GE(u.total[f_idx], 0.0f);
      EXPECT_LE(u.total[f_idx], 3.0f + 1e-5f);
      float sum = 0.0f;
      for (const auto& cls : u.per_class) {
        EXPECT_GE(cls[f_idx], 0.0f);
        EXPECT_LE(cls[f_idx], 1.0f + 1e-6f);
        sum += cls[f_idx];
      }
      EXPECT_NEAR(u.total[f_idx], sum, 1e-5f);
    }
  }
}

TEST(ImportanceTest, DeadFilterScoresZero) {
  Fixture f;
  // Silence filter 1 of conv0 entirely.
  nn::PrunableUnit& unit = f.model.units[0];
  const int64_t fsz = unit.conv->in_channels() * unit.conv->kernel() * unit.conv->kernel();
  for (int64_t i = 0; i < fsz; ++i) unit.conv->weight().value[fsz + i] = 0.0f;
  unit.bn->gamma().value[1] = 0.0f;
  unit.bn->beta().value[1] = 0.0f;
  unit.bn->running_mean()[1] = 0.0f;

  ImportanceEvaluator eval(ImportanceConfig{.images_per_class = 4});
  const ImportanceResult res = eval.evaluate(f.model, f.data.train);
  EXPECT_FLOAT_EQ(res.units[0].total[1], 0.0f);
}

TEST(ImportanceTest, TaylorAndExactAgreeOnRanking) {
  Fixture f;
  Rng rng(7);
  const data::Batch batch = f.data.train.sample_class(0, 3, rng);
  ImportanceEvaluator eval;
  const Tensor taylor = eval.taylor_activation_scores(f.model, 0, batch);
  const Tensor exact = eval.exact_activation_scores(f.model, 0, batch);
  ASSERT_EQ(taylor.shape(), exact.shape());
  // Spearman-style check: correlate the two scores over all activations.
  const int64_t n = taylor.numel();
  double mt = 0.0, me = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    mt += taylor[i];
    me += exact[i];
  }
  mt /= n;
  me /= n;
  double cov = 0.0, vt = 0.0, ve = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    cov += (taylor[i] - mt) * (exact[i] - me);
    vt += (taylor[i] - mt) * (taylor[i] - mt);
    ve += (exact[i] - me) * (exact[i] - me);
  }
  const double corr = cov / (std::sqrt(vt) * std::sqrt(ve) + 1e-12);
  EXPECT_GT(corr, 0.7) << "first-order Taylor should track the exact zero-out deltas";
}

TEST(ImportanceTest, ExactModeEvaluateMatchesConfig) {
  Fixture f;
  ImportanceEvaluator eval(
      ImportanceConfig{.images_per_class = 2, .mode = ScoreMode::kExactZeroOut});
  const ImportanceResult res = eval.evaluate(f.model, f.data.train);
  EXPECT_EQ(res.units.size(), 2u);
  for (const UnitScores& u : res.units) {
    for (float s : u.total) {
      EXPECT_GE(s, 0.0f);
      EXPECT_LE(s, 3.0f + 1e-5f);
    }
  }
}

TEST(ImportanceTest, MeanAggregateIsBelowMax) {
  Fixture f;
  ImportanceEvaluator max_eval(
      ImportanceConfig{.images_per_class = 4, .aggregate = SpatialAggregate::kMax});
  ImportanceEvaluator mean_eval(
      ImportanceConfig{.images_per_class = 4, .aggregate = SpatialAggregate::kMean});
  const auto rmax = max_eval.evaluate(f.model, f.data.train);
  const auto rmean = mean_eval.evaluate(f.model, f.data.train);
  for (size_t u = 0; u < rmax.units.size(); ++u) {
    for (size_t i = 0; i < rmax.units[u].total.size(); ++i) {
      EXPECT_LE(rmean.units[u].total[i], rmax.units[u].total[i] + 1e-5f);
    }
  }
}

TEST(ImportanceTest, LargeTauKillsAllScores) {
  Fixture f;
  ImportanceEvaluator eval(ImportanceConfig{.images_per_class = 2, .tau = 1e12f});
  const ImportanceResult res = eval.evaluate(f.model, f.data.train);
  for (const UnitScores& u : res.units) {
    for (float s : u.total) EXPECT_FLOAT_EQ(s, 0.0f);
  }
}

TEST(ImportanceTest, CaptureIsReleasedAfterEvaluation) {
  Fixture f;
  ImportanceEvaluator eval(ImportanceConfig{.images_per_class = 2});
  eval.evaluate(f.model, f.data.train);
  for (const nn::PrunableUnit& u : f.model.units) {
    EXPECT_FALSE(u.score_point->instrument().capture);
    EXPECT_TRUE(u.score_point->instrument().captured_output.empty());
  }
}

TEST(ImportanceTest, DeterministicAcrossCalls) {
  Fixture f;
  ImportanceEvaluator eval(ImportanceConfig{.images_per_class = 3});
  const auto a = eval.evaluate(f.model, f.data.train);
  const auto b = eval.evaluate(f.model, f.data.train);
  for (size_t u = 0; u < a.units.size(); ++u) {
    EXPECT_EQ(a.units[u].total, b.units[u].total);
  }
}

TEST(ImportanceTest, HelperAccessors) {
  Fixture f;
  ImportanceEvaluator eval(ImportanceConfig{.images_per_class = 2});
  const ImportanceResult res = eval.evaluate(f.model, f.data.train);
  const auto all = res.all_scores();
  size_t expect = 0;
  for (const auto& u : res.units) expect += u.total.size();
  EXPECT_EQ(all.size(), expect);
  const auto means = res.mean_per_unit();
  ASSERT_EQ(means.size(), res.units.size());
  const auto& t0 = res.units[0].total;
  const float want =
      std::accumulate(t0.begin(), t0.end(), 0.0f) / static_cast<float>(t0.size());
  EXPECT_NEAR(means[0], want, 1e-5f);
}

TEST(ImportanceTest, EvaluateReleasesCapturedTensors) {
  // Captured (a, dL/da) tensors for a whole batch dominate peak memory;
  // every scoring round must drop them on the way out.
  Fixture f;
  for (ScoreMode mode : {ScoreMode::kTaylor, ScoreMode::kExactZeroOut}) {
    ImportanceEvaluator eval(ImportanceConfig{.images_per_class = 2, .mode = mode});
    eval.evaluate(f.model, f.data.train);
    for (const auto& u : f.model.units) {
      const nn::Instrument& inst = u.score_point->instrument();
      EXPECT_FALSE(inst.capture) << u.name;
      EXPECT_TRUE(inst.captured_output.empty()) << u.name;
      EXPECT_TRUE(inst.captured_grad.empty()) << u.name;
    }
  }
}

TEST(ImportanceTest, ErrorsOnBadInput) {
  Fixture f;
  ImportanceEvaluator eval;
  Rng rng(1);
  const data::Batch batch = f.data.train.sample_class(0, 2, rng);
  EXPECT_THROW(eval.taylor_activation_scores(f.model, 5, batch), std::out_of_range);
  EXPECT_THROW(eval.exact_activation_scores(f.model, 5, batch), std::out_of_range);
  nn::Model no_units;
  no_units.net = std::make_unique<nn::Sequential>();
  EXPECT_THROW(eval.evaluate(no_units, f.data.train), std::invalid_argument);
}

}  // namespace
}  // namespace capr::core
