// parallel_for semantics, and numerical equivalence of multi-threaded
// conv execution with the serial path.
#include "tensor/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/conv2d.h"
#include "test_util.h"

namespace capr {
namespace {

struct ThreadGuard {
  ~ThreadGuard() { set_num_threads(0); }
};

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadGuard guard;
  for (int workers : {1, 2, 4}) {
    set_num_threads(workers);
    std::vector<std::atomic<int>> hits(100);
    parallel_for(0, 100, [&](int, int64_t i) { ++hits[static_cast<size_t>(i)]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, EmptyAndReversedRangesAreNoops) {
  int calls = 0;
  parallel_for(5, 5, [&](int, int64_t) { ++calls; });
  parallel_for(7, 3, [&](int, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, ThreadIndicesAreDense) {
  ThreadGuard guard;
  set_num_threads(3);
  std::atomic<int> max_tid{0};
  parallel_for(0, 30, [&](int tid, int64_t) {
    int cur = max_tid.load();
    while (tid > cur && !max_tid.compare_exchange_weak(cur, tid)) {
    }
  });
  EXPECT_LT(max_tid.load(), 3);
}

TEST(ParallelForTest, PropagatesExceptions) {
  ThreadGuard guard;
  set_num_threads(2);
  EXPECT_THROW(parallel_for(0, 10,
                            [](int, int64_t i) {
                              if (i == 7) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ParallelForTest, WorkerThreadExceptionDoesNotTerminate) {
  // Regression: an exception thrown on a non-main chunk must be captured
  // and rethrown on the caller's thread, never escape on the std::thread
  // (which would call std::terminate). Chunk assignment is deterministic:
  // with 4 workers over [0, 8), index 3 lands on worker thread 1.
  ThreadGuard guard;
  set_num_threads(4);
  EXPECT_THROW(parallel_for(0, 8,
                            [](int, int64_t i) {
                              if (i == 3) throw std::runtime_error("worker chunk");
                            }),
               std::runtime_error);
}

TEST(ParallelForTest, MainThreadChunkExceptionPropagates) {
  // Index 0 is always in the caller-executed chunk (tid 0).
  ThreadGuard guard;
  set_num_threads(4);
  EXPECT_THROW(parallel_for(0, 8,
                            [](int, int64_t i) {
                              if (i == 0) throw std::invalid_argument("main chunk");
                            }),
               std::invalid_argument);
}

TEST(ParallelForTest, FirstExceptionWinsWhenAllThrow) {
  // Every index throws; exactly one exception must reach the caller and
  // it must be one of the thrown ones (not terminate, not a mixture).
  ThreadGuard guard;
  set_num_threads(4);
  try {
    parallel_for(0, 16, [](int, int64_t i) {
      throw std::runtime_error("boom " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("boom ", 0), 0u) << e.what();
  }
}

TEST(ParallelForTest, SerialPathPropagatesExceptions) {
  ThreadGuard guard;
  set_num_threads(1);
  EXPECT_THROW(parallel_for(0, 4,
                            [](int, int64_t i) {
                              if (i == 2) throw std::runtime_error("serial");
                            }),
               std::runtime_error);
}

TEST(ParallelForTest, FailedSweepAbortsEarlyAndPoolStaysUsable) {
  // After a throwing sweep the pool must be fully joined and reusable:
  // a second sweep runs to completion and covers the range exactly once.
  // Also sanity-check the cooperative abort: indices visited in the
  // failing sweep never exceed the full range (no double execution).
  ThreadGuard guard;
  set_num_threads(4);
  std::atomic<int64_t> visited{0};
  EXPECT_THROW(parallel_for(0, 1000,
                            [&](int, int64_t i) {
                              if (i == 0) throw std::runtime_error("abort");
                              ++visited;
                            }),
               std::runtime_error);
  EXPECT_LE(visited.load(), 999);

  std::vector<std::atomic<int>> hits(64);
  parallel_for(0, 64, [&](int, int64_t i) { ++hits[static_cast<size_t>(i)]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, NestedParallelForRunsInlineAndCoversRange) {
  // A parallel_for issued from inside a worker must not spawn threads
  // from threads: the nested loop runs inline on the calling worker
  // (tid 0 from its own perspective) and still covers its whole range.
  // This is what lets conv2d batch workers call the tiled GEMM safely.
  ThreadGuard guard;
  set_num_threads(4);
  EXPECT_FALSE(in_parallel_region());
  std::vector<std::atomic<int>> hits(8 * 16);
  std::atomic<int> nested_nonzero_tid{0};
  std::atomic<int> outside_region{0};
  parallel_for(0, 8, [&](int, int64_t i) {
    if (!in_parallel_region()) ++outside_region;
    parallel_for(0, 16, [&](int tid, int64_t j) {
      if (tid != 0) ++nested_nonzero_tid;
      ++hits[static_cast<size_t>(i * 16 + j)];
    });
  });
  EXPECT_FALSE(in_parallel_region());
  EXPECT_EQ(outside_region.load(), 0);       // every body saw itself in-region
  EXPECT_EQ(nested_nonzero_tid.load(), 0);   // nested loop stayed inline
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, NumThreadsDefaultsPositive) {
  ThreadGuard guard;
  set_num_threads(0);
  EXPECT_GE(num_threads(), 1);
  set_num_threads(5);
  EXPECT_EQ(num_threads(), 5);
}

TEST(ParallelConvTest, MultiThreadMatchesSerialForwardBackward) {
  ThreadGuard guard;
  nn::Conv2d conv(3, 5, 3, 1, 1, true);
  Rng rng(9);
  rng.fill_normal(conv.weight().value, 0.0f, 0.4f);
  rng.fill_normal(conv.bias().value, 0.0f, 0.2f);
  const Tensor x = testing::random_tensor({6, 3, 7, 7}, 10);
  const Tensor gout = testing::random_tensor({6, 5, 7, 7}, 11);

  set_num_threads(1);
  for (nn::Param* p : conv.params()) p->zero_grad();
  const Tensor y1 = conv.forward(x, true);
  const Tensor gx1 = conv.backward(gout);
  const Tensor gw1 = conv.weight().grad;
  const Tensor gb1 = conv.bias().grad;

  set_num_threads(4);
  for (nn::Param* p : conv.params()) p->zero_grad();
  const Tensor y4 = conv.forward(x, true);
  const Tensor gx4 = conv.backward(gout);

  EXPECT_TRUE(y4.allclose(y1, 1e-6f));
  EXPECT_TRUE(gx4.allclose(gx1, 1e-5f));
  // Reduction order differs across threads; allow float reassociation.
  EXPECT_TRUE(conv.weight().grad.allclose(gw1, 1e-3f));
  EXPECT_TRUE(conv.bias().grad.allclose(gb1, 1e-3f));
}

}  // namespace
}  // namespace capr
