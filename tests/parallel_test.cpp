// parallel_for semantics, and numerical equivalence of multi-threaded
// conv execution with the serial path.
#include "tensor/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "nn/conv2d.h"
#include "test_util.h"

namespace capr {
namespace {

struct ThreadGuard {
  ~ThreadGuard() { set_num_threads(0); }
};

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadGuard guard;
  for (int workers : {1, 2, 4}) {
    set_num_threads(workers);
    std::vector<std::atomic<int>> hits(100);
    parallel_for(0, 100, [&](int, int64_t i) { ++hits[static_cast<size_t>(i)]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, EmptyAndReversedRangesAreNoops) {
  int calls = 0;
  parallel_for(5, 5, [&](int, int64_t) { ++calls; });
  parallel_for(7, 3, [&](int, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, ThreadIndicesAreDense) {
  ThreadGuard guard;
  set_num_threads(3);
  std::atomic<int> max_tid{0};
  parallel_for(0, 30, [&](int tid, int64_t) {
    int cur = max_tid.load();
    while (tid > cur && !max_tid.compare_exchange_weak(cur, tid)) {
    }
  });
  EXPECT_LT(max_tid.load(), 3);
}

TEST(ParallelForTest, PropagatesExceptions) {
  ThreadGuard guard;
  set_num_threads(2);
  EXPECT_THROW(parallel_for(0, 10,
                            [](int, int64_t i) {
                              if (i == 7) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ParallelForTest, NumThreadsDefaultsPositive) {
  ThreadGuard guard;
  set_num_threads(0);
  EXPECT_GE(num_threads(), 1);
  set_num_threads(5);
  EXPECT_EQ(num_threads(), 5);
}

TEST(ParallelConvTest, MultiThreadMatchesSerialForwardBackward) {
  ThreadGuard guard;
  nn::Conv2d conv(3, 5, 3, 1, 1, true);
  Rng rng(9);
  rng.fill_normal(conv.weight().value, 0.0f, 0.4f);
  rng.fill_normal(conv.bias().value, 0.0f, 0.2f);
  const Tensor x = testing::random_tensor({6, 3, 7, 7}, 10);
  const Tensor gout = testing::random_tensor({6, 5, 7, 7}, 11);

  set_num_threads(1);
  for (nn::Param* p : conv.params()) p->zero_grad();
  const Tensor y1 = conv.forward(x, true);
  const Tensor gx1 = conv.backward(gout);
  const Tensor gw1 = conv.weight().grad;
  const Tensor gb1 = conv.bias().grad;

  set_num_threads(4);
  for (nn::Param* p : conv.params()) p->zero_grad();
  const Tensor y4 = conv.forward(x, true);
  const Tensor gx4 = conv.backward(gout);

  EXPECT_TRUE(y4.allclose(y1, 1e-6f));
  EXPECT_TRUE(gx4.allclose(gx1, 1e-5f));
  // Reduction order differs across threads; allow float reassociation.
  EXPECT_TRUE(conv.weight().grad.allclose(gw1, 1e-3f));
  EXPECT_TRUE(conv.bias().grad.allclose(gb1, 1e-3f));
}

}  // namespace
}  // namespace capr
