// Numerical gradient checks and behavioural tests for every layer.
#include <gtest/gtest.h>

#include <tuple>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace capr::nn {
namespace {

using capr::testing::max_abs_diff;
using capr::testing::random_tensor;

/// Scalar objective sum(layer(x) * w) with fixed random weights w —
/// its analytic input gradient is layer.backward(w).
float objective(Layer& layer, const Tensor& x, const Tensor& w, bool training = true) {
  const Tensor y = layer.forward(x, training);
  double acc = 0.0;
  for (int64_t i = 0; i < y.numel(); ++i) acc += static_cast<double>(y[i]) * w[i];
  return static_cast<float>(acc);
}

/// Checks analytic input gradients and (when present) parameter
/// gradients against central finite differences.
void check_gradients(Layer& layer, Tensor x, const Shape& out_shape, float tol = 2e-2f,
                     bool training = true) {
  const Tensor w = random_tensor(out_shape, 555, 0.1f, 1.0f);
  // Analytic gradients.
  for (Param* p : layer.params()) p->zero_grad();
  layer.forward(x, training);
  const Tensor gx = layer.backward(w);

  // Numerical input gradient (spot-check a subset for speed).
  const int64_t stride = std::max<int64_t>(1, x.numel() / 23);
  for (int64_t i = 0; i < x.numel(); i += stride) {
    const float num = capr::testing::numerical_grad(
        [&] { return objective(layer, x, w, training); }, x[i]);
    EXPECT_NEAR(gx[i], num, tol) << "input grad at " << i;
  }

  // Numerical parameter gradients.
  for (Param* p : layer.params()) {
    const int64_t pstride = std::max<int64_t>(1, p->value.numel() / 17);
    for (int64_t i = 0; i < p->value.numel(); i += pstride) {
      const float num = capr::testing::numerical_grad(
          [&] { return objective(layer, x, w, training); }, p->value[i]);
      EXPECT_NEAR(p->grad[i], num, tol) << p->name << " grad at " << i;
    }
  }
}

TEST(Conv2dTest, ForwardMatchesHandComputed) {
  Conv2d conv(1, 1, 2, 1, 0, true);
  conv.weight().value = Tensor::from({1, 1, 2, 2}, {1, 2, 3, 4});
  conv.bias().value = Tensor::from({10});
  Tensor x = Tensor::from({1, 1, 2, 2}, {1, 1, 1, 1});
  Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 20.0f);  // 1+2+3+4 + bias 10
}

TEST(Conv2dTest, GradientsMatchNumerical) {
  Conv2d conv(2, 3, 3, 1, 1, true);
  Rng rng(3);
  rng.fill_normal(conv.weight().value, 0.0f, 0.5f);
  rng.fill_normal(conv.bias().value, 0.0f, 0.5f);
  check_gradients(conv, random_tensor({2, 2, 5, 5}, 42), {2, 3, 5, 5});
}

TEST(Conv2dTest, StridedGradients) {
  Conv2d conv(1, 2, 3, 2, 1, false);
  Rng rng(4);
  rng.fill_normal(conv.weight().value, 0.0f, 0.5f);
  check_gradients(conv, random_tensor({1, 1, 7, 7}, 43), {1, 2, 4, 4});
}

TEST(Conv2dTest, InputValidation) {
  Conv2d conv(3, 4, 3, 1, 1, false);
  EXPECT_THROW(conv.forward(Tensor({1, 2, 8, 8}), false), std::invalid_argument);
  EXPECT_THROW(conv.forward(Tensor({3, 8, 8}), false), std::invalid_argument);
  EXPECT_THROW(conv.backward(Tensor({1, 4, 8, 8})), std::logic_error);
  EXPECT_THROW(Conv2d(0, 1, 3, 1, 1, false), std::invalid_argument);
}

TEST(Conv2dTest, RemoveOutChannels) {
  Conv2d conv(2, 4, 3, 1, 1, true);
  Rng rng(5);
  rng.fill_normal(conv.weight().value, 0.0f, 1.0f);
  const Tensor before = conv.weight().value;
  conv.remove_out_channels({1, 3});
  EXPECT_EQ(conv.out_channels(), 2);
  EXPECT_EQ(conv.weight().value.shape(), (Shape{2, 2, 3, 3}));
  // Remaining filters are the old 0 and 2, data preserved.
  for (int64_t i = 0; i < 18; ++i) {
    EXPECT_EQ(conv.weight().value[i], before[i]);              // filter 0
    EXPECT_EQ(conv.weight().value[18 + i], before[36 + i]);    // filter 2
  }
  EXPECT_THROW(conv.remove_out_channels({5}), std::out_of_range);
  EXPECT_THROW(conv.remove_out_channels({0, 1}), std::invalid_argument);  // would empty
}

TEST(Conv2dTest, RemoveInChannels) {
  Conv2d conv(3, 2, 1, 1, 0, false);
  conv.weight().value = Tensor::from({2, 3, 1, 1}, {1, 2, 3, 4, 5, 6});
  conv.remove_in_channels({1});
  EXPECT_EQ(conv.in_channels(), 2);
  EXPECT_TRUE(conv.weight().value.allclose(Tensor::from({2, 2, 1, 1}, {1, 3, 4, 6})));
}

TEST(LinearTest, ForwardMatchesHandComputed) {
  Linear lin(2, 2);
  lin.weight().value = Tensor::from({2, 2}, {1, 2, 3, 4});
  lin.bias().value = Tensor::from({10, 20});
  Tensor y = lin.forward(Tensor::from({1, 2}, {1, 1}), false);
  EXPECT_TRUE(y.allclose(Tensor::from({1, 2}, {13, 27})));
}

TEST(LinearTest, GradientsMatchNumerical) {
  Linear lin(5, 4);
  Rng rng(6);
  rng.fill_normal(lin.weight().value, 0.0f, 0.5f);
  rng.fill_normal(lin.bias().value, 0.0f, 0.5f);
  check_gradients(lin, random_tensor({3, 5}, 44), {3, 4});
}

TEST(LinearTest, RemoveInFeatures) {
  Linear lin(4, 2);
  lin.weight().value = Tensor::from({2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
  lin.remove_in_features({0, 2});
  EXPECT_EQ(lin.in_features(), 2);
  EXPECT_TRUE(lin.weight().value.allclose(Tensor::from({2, 2}, {2, 4, 6, 8})));
  EXPECT_THROW(lin.remove_in_features({0, 1}), std::invalid_argument);
}

TEST(BatchNormTest, NormalisesTrainingBatch) {
  BatchNorm2d bn(2);
  Tensor x = random_tensor({4, 2, 3, 3}, 45, -5.0f, 5.0f);
  Tensor y = bn.forward(x, true);
  // Per-channel mean ~0, var ~1.
  for (int64_t c = 0; c < 2; ++c) {
    double sum = 0.0, sq = 0.0;
    for (int64_t n = 0; n < 4; ++n) {
      for (int64_t k = 0; k < 9; ++k) {
        const float v = y[(n * 2 + c) * 9 + k];
        sum += v;
        sq += static_cast<double>(v) * v;
      }
    }
    EXPECT_NEAR(sum / 36.0, 0.0, 1e-4);
    EXPECT_NEAR(sq / 36.0, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, TrainingGradientsMatchNumerical) {
  BatchNorm2d bn(3);
  Rng rng(7);
  rng.fill_uniform(bn.gamma().value, 0.5f, 1.5f);
  rng.fill_uniform(bn.beta().value, -0.5f, 0.5f);
  check_gradients(bn, random_tensor({2, 3, 4, 4}, 46), {2, 3, 4, 4}, 3e-2f);
}

TEST(BatchNormTest, EvalGradientsMatchNumerical) {
  BatchNorm2d bn(2);
  Rng rng(8);
  rng.fill_uniform(bn.gamma().value, 0.5f, 1.5f);
  rng.fill_uniform(bn.running_var(), 0.5f, 2.0f);
  rng.fill_uniform(bn.running_mean(), -1.0f, 1.0f);
  check_gradients(bn, random_tensor({2, 2, 3, 3}, 47), {2, 2, 3, 3}, 2e-2f,
                  /*training=*/false);
}

TEST(BatchNormTest, EvalUsesRunningStats) {
  BatchNorm2d bn(1);
  bn.running_mean()[0] = 2.0f;
  bn.running_var()[0] = 4.0f;
  Tensor x({1, 1, 1, 1}, 4.0f);
  const Tensor y = bn.forward(x, false);
  EXPECT_NEAR(y[0], (4.0f - 2.0f) / 2.0f, 1e-4f);
}

TEST(BatchNormTest, RemoveChannels) {
  BatchNorm2d bn(3);
  bn.gamma().value = Tensor::from({1, 2, 3});
  bn.beta().value = Tensor::from({4, 5, 6});
  bn.running_mean() = Tensor::from({7, 8, 9});
  bn.running_var() = Tensor::from({10, 11, 12});
  bn.remove_channels({1});
  EXPECT_EQ(bn.channels(), 2);
  EXPECT_TRUE(bn.gamma().value.allclose(Tensor::from({1, 3})));
  EXPECT_TRUE(bn.running_var().allclose(Tensor::from({10, 12})));
}

TEST(ReLUTest, GradientsMatchNumerical) {
  ReLU relu;
  // Keep activations away from the kink for the finite-difference check.
  Tensor x = random_tensor({2, 3, 4, 4}, 48);
  for (int64_t i = 0; i < x.numel(); ++i) {
    if (std::fabs(x[i]) < 0.05f) x[i] = 0.1f;
  }
  check_gradients(relu, x, {2, 3, 4, 4});
}

TEST(MaxPoolTest, ForwardAndRouting) {
  MaxPool2d pool(2);
  Tensor x = Tensor::from({1, 1, 2, 2}, {1, 5, 3, 2});
  Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  Tensor g = pool.backward(Tensor({1, 1, 1, 1}, 7.0f));
  EXPECT_TRUE(g.allclose(Tensor::from({1, 1, 2, 2}, {0, 7, 0, 0})));
}

TEST(MaxPoolTest, GradientsMatchNumerical) {
  MaxPool2d pool(2);
  // Distinct values avoid ties at the pooling argmax.
  Tensor x({1, 2, 4, 4});
  for (int64_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>((i * 37) % 101) / 10.0f;
  check_gradients(pool, x, {1, 2, 2, 2});
}

TEST(GlobalAvgPoolTest, ForwardAndBackward) {
  GlobalAvgPool gap;
  Tensor x = Tensor::from({1, 2, 1, 2}, {2, 4, 10, 30});
  Tensor y = gap.forward(x, true);
  EXPECT_TRUE(y.allclose(Tensor::from({1, 2}, {3, 20})));
  Tensor g = gap.backward(Tensor::from({1, 2}, {2, 4}));
  EXPECT_TRUE(g.allclose(Tensor::from({1, 2, 1, 2}, {1, 1, 2, 2})));
}

TEST(FlattenTest, RoundTrip) {
  Flatten flat;
  Tensor x = random_tensor({2, 3, 2, 2}, 49);
  Tensor y = flat.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 12}));
  Tensor g = flat.backward(y);
  EXPECT_TRUE(g.allclose(x));
}

TEST(SequentialTest, ComposesAndBackprops) {
  Sequential seq;
  auto* conv = seq.add(std::make_unique<Conv2d>(1, 2, 3, 1, 1, false));
  seq.add(std::make_unique<ReLU>());
  seq.add(std::make_unique<GlobalAvgPool>());
  Rng rng(10);
  rng.fill_normal(conv->weight().value, 0.0f, 0.5f);
  check_gradients(seq, random_tensor({2, 1, 4, 4}, 50), {2, 2});
}

TEST(BasicBlockTest, IdentityShortcutGradients) {
  BasicBlock blk(3, 3, 1);
  Rng rng(11);
  rng.fill_normal(blk.conv1().weight().value, 0.0f, 0.4f);
  rng.fill_normal(blk.conv2().weight().value, 0.0f, 0.4f);
  EXPECT_FALSE(blk.has_projection());
  check_gradients(blk, random_tensor({2, 3, 4, 4}, 51), {2, 3, 4, 4}, 4e-2f);
}

TEST(BasicBlockTest, ProjectionShortcutGradients) {
  BasicBlock blk(2, 4, 2);
  Rng rng(12);
  rng.fill_normal(blk.conv1().weight().value, 0.0f, 0.4f);
  rng.fill_normal(blk.conv2().weight().value, 0.0f, 0.4f);
  rng.fill_normal(blk.proj_conv()->weight().value, 0.0f, 0.4f);
  EXPECT_TRUE(blk.has_projection());
  check_gradients(blk, random_tensor({2, 2, 4, 4}, 52), {2, 4, 2, 2}, 4e-2f);
}

TEST(InstrumentTest, ZeroFlatIndexIntervention) {
  ReLU relu;
  relu.instrument().zero_flat_index = 1;
  Tensor y = relu.forward(Tensor::from({1, 1, 1, 3}, {1, 2, 3}), false);
  EXPECT_TRUE(y.allclose(Tensor::from({1, 1, 1, 3}, {1, 0, 3})));
  relu.instrument().zero_flat_index = 99;
  EXPECT_THROW(relu.forward(Tensor({1, 1, 1, 3}), false), std::out_of_range);
}

TEST(InstrumentTest, ChannelScaleMasksChannels) {
  ReLU relu;
  relu.instrument().channel_scale = {1.0f, 0.0f};
  Tensor x = Tensor::from({1, 2, 1, 2}, {1, 2, 3, 4});
  Tensor y = relu.forward(x, false);
  EXPECT_TRUE(y.allclose(Tensor::from({1, 2, 1, 2}, {1, 2, 0, 0})));
  relu.instrument().channel_scale = {1.0f};  // wrong length
  EXPECT_THROW(relu.forward(x, false), std::invalid_argument);
}

TEST(InstrumentTest, CaptureRecordsOutputAndGrad) {
  ReLU relu;
  relu.instrument().capture = true;
  Tensor x = Tensor::from({1, 1, 1, 2}, {-1, 2});
  relu.forward(x, true);
  EXPECT_TRUE(relu.instrument().captured_output.allclose(Tensor::from({1, 1, 1, 2}, {0, 2})));
  relu.backward(Tensor::from({1, 1, 1, 2}, {3, 4}));
  EXPECT_TRUE(relu.instrument().captured_grad.allclose(Tensor::from({1, 1, 1, 2}, {3, 4})));
}

}  // namespace
}  // namespace capr::nn
