// ModuleGraph IR: golden topology dumps, build determinism, and
// equivalence of graph-derived units with both the builders' hand
// annotations and the nn::derive_units facade.
#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/dump.h"
#include "models/builders.h"
#include "nn/depgraph.h"

namespace capr::graph {
namespace {

const std::vector<std::string>& all_archs() {
  static const std::vector<std::string> archs = {
      "vgg11",    "vgg13",    "vgg16",    "vgg19", "resnet20",
      "resnet32", "resnet44", "resnet56", "tiny"};
  return archs;
}

/// The exact configuration the committed golden dumps were generated
/// with (the models::BuildConfig defaults, i.e. a bare `capr-analyze
/// --arch <name> --dump-graph ...` invocation).
nn::Model golden_model(const std::string& arch) {
  return models::make_model(arch, models::BuildConfig{});
}

std::string read_golden(const std::string& arch) {
  const std::string path = std::string(CAPR_GOLDEN_GRAPH_DIR) + "/" + arch + ".json";
  std::ifstream in(path);
  if (!in) {
    ADD_FAILURE() << "missing golden dump " << path
                  << " (regenerate with: capr-analyze --arch " << arch
                  << " --dump-graph " << path << ")";
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class ArchSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(ArchSweep, MatchesGoldenJson) {
  const nn::Model m = golden_model(GetParam());
  const ModuleGraph g = ModuleGraph::build(m);
  ASSERT_TRUE(g.ok()) << g.error()->format();
  EXPECT_EQ(to_json(g, m.arch), read_golden(GetParam()));
}

TEST_P(ArchSweep, DumpIsBitwiseStable) {
  const nn::Model a = golden_model(GetParam());
  const nn::Model b = golden_model(GetParam());
  EXPECT_EQ(to_json(ModuleGraph::build(a), a.arch),
            to_json(ModuleGraph::build(b), b.arch));
}

// graph.prunable_units() == builders' hand annotations == legacy
// nn::derive_units, pointer-for-pointer. Three independent derivations
// of the paper's coupling rules must agree before any of them is
// allowed to drive surgery.
TEST_P(ArchSweep, UnitsMatchAnnotationsAndDerive) {
  nn::Model m = golden_model(GetParam());
  const ModuleGraph g = ModuleGraph::build(m);
  ASSERT_TRUE(g.ok()) << g.error()->format();
  const std::vector<nn::PrunableUnit> from_graph = g.prunable_units();
  const std::vector<nn::PrunableUnit> from_derive =
      nn::derive_units(*m.net, m.input_shape);

  ASSERT_EQ(from_graph.size(), m.units.size());
  ASSERT_EQ(from_derive.size(), m.units.size());
  for (size_t u = 0; u < m.units.size(); ++u) {
    for (const nn::PrunableUnit* got : {&from_graph[u], &from_derive[u]}) {
      EXPECT_EQ(got->name, m.units[u].name) << "unit " << u;
      EXPECT_EQ(got->conv, m.units[u].conv) << "unit " << u;
      EXPECT_EQ(got->bn, m.units[u].bn) << "unit " << u;
      EXPECT_EQ(got->score_point, m.units[u].score_point) << "unit " << u;
      ASSERT_EQ(got->consumers.size(), m.units[u].consumers.size()) << "unit " << u;
      for (size_t c = 0; c < got->consumers.size(); ++c) {
        EXPECT_EQ(got->consumers[c].conv, m.units[u].consumers[c].conv);
        EXPECT_EQ(got->consumers[c].linear, m.units[u].consumers[c].linear);
        EXPECT_EQ(got->consumers[c].spatial, m.units[u].consumers[c].spatial);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Archs, ArchSweep, ::testing::ValuesIn(all_archs()));

TEST(GraphTest, Resnet20CouplingStructure) {
  const nn::Model m = golden_model("resnet20");
  const ModuleGraph g = ModuleGraph::build(m);
  ASSERT_TRUE(g.ok()) << g.error()->format();

  // The paper's ResNet rule: only conv1 of each BasicBlock is prunable
  // (9 blocks in resnet20); conv2/projection and the stem conv feeding
  // the first identity shortcut are channel-pinned by residual adds.
  EXPECT_EQ(g.prunable_units().size(), 9u);
  for (const CouplingGroup& grp : g.groups()) {
    const Node& producer = g.node(grp.producer);
    ASSERT_EQ(producer.kind, Kind::kConv2d) << grp.name;
    const CouplingGroup* looked_up =
        g.group_for(static_cast<const nn::Conv2d*>(producer.layer));
    EXPECT_EQ(looked_up, &grp) << grp.name;
  }
  // The stem conv's group is the first one and must be constrained.
  ASSERT_FALSE(g.groups().empty());
  EXPECT_TRUE(g.groups().front().residual_constrained);
}

TEST(GraphTest, NodeEdgesAreConsistent) {
  const nn::Model m = golden_model("resnet20");
  const ModuleGraph g = ModuleGraph::build(m);
  ASSERT_TRUE(g.ok());
  for (const Node& n : g.nodes()) {
    EXPECT_EQ(&g.node(n.id), &n);
    for (NodeId in : n.inputs) {
      const auto& outs = g.node(in).outputs;
      EXPECT_NE(std::find(outs.begin(), outs.end(), n.id), outs.end())
          << "edge " << in << " -> " << n.id << " not mirrored";
    }
    if (n.kind == Kind::kAdd) {
      EXPECT_EQ(n.inputs.size(), 2u) << n.path;
      EXPECT_EQ(n.layer, nullptr) << n.path;
    } else {
      ASSERT_NE(n.layer, nullptr) << n.path;
      EXPECT_EQ(g.find(n.layer), &n) << n.path;
    }
  }
}

TEST(GraphTest, IllFormedModelRecordsErrorInsteadOfThrowing) {
  nn::Model m;
  m.input_shape = {1, 4, 4};
  m.net = std::make_unique<nn::Sequential>();
  m.net->add(std::make_unique<nn::Conv2d>(1, 2, 3, 1, 1, false));
  m.net->add(std::make_unique<nn::ReLU>());
  m.net->add(std::make_unique<nn::Conv2d>(3, 2, 3, 1, 1, false))->set_name("bad");
  const ModuleGraph g = ModuleGraph::build(*m.net, m.input_shape);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.error()->code, GraphError::Code::kShapeMismatch);
  EXPECT_EQ(g.error()->path, "2");
  EXPECT_EQ(g.error()->name, "bad");
  EXPECT_NE(g.error()->format().find("expects C_in=3"), std::string::npos);
  // The facade converts the recorded error into the legacy exception.
  EXPECT_THROW(nn::derive_units(*m.net, m.input_shape), std::logic_error);
  // Nodes built before the bad edge are preserved for diagnostics.
  EXPECT_EQ(g.nodes().size(), 2u);
}

TEST(GraphTest, ErrorDumpCarriesErrorObject) {
  nn::Model m;
  m.input_shape = {1, 4, 4};
  m.net = std::make_unique<nn::Sequential>();
  m.net->add(std::make_unique<nn::Linear>(5, 2));
  const ModuleGraph g = ModuleGraph::build(*m.net, m.input_shape);
  ASSERT_FALSE(g.ok());
  const std::string json = to_json(g, "adhoc");
  EXPECT_NE(json.find("\"error\""), std::string::npos);
  EXPECT_NE(json.find("without Flatten"), std::string::npos);
}

TEST(GraphTest, DotDumpIsWellFormed) {
  const nn::Model m = golden_model("tiny");
  const ModuleGraph g = ModuleGraph::build(m);
  ASSERT_TRUE(g.ok());
  const std::string dot = to_dot(g, m.arch);
  EXPECT_EQ(dot.rfind("digraph", 0), 0u);
  for (const Node& n : g.nodes()) {
    EXPECT_NE(dot.find(n.path), std::string::npos) << n.path;
  }
}

}  // namespace
}  // namespace capr::graph
