#include "flops/flops.h"

#include <gtest/gtest.h>

#include "core/surgeon.h"
#include "models/builders.h"

namespace capr::flops {
namespace {

models::BuildConfig tiny_cfg() {
  models::BuildConfig cfg;
  cfg.num_classes = 4;
  cfg.input_size = 8;
  cfg.width_mult = 0.25f;
  return cfg;
}

TEST(FlopsTest, SingleConvClosedForm) {
  nn::Model m;
  m.arch = "probe";
  m.input_shape = {3, 8, 8};
  m.num_classes = 1;
  m.net = std::make_unique<nn::Sequential>();
  auto* conv = m.net->add(std::make_unique<nn::Conv2d>(3, 16, 3, 1, 1, false));
  conv->set_name("c");
  const ModelCost cost = count(m);
  ASSERT_EQ(cost.layers.size(), 1u);
  EXPECT_EQ(cost.total_params, 16 * 3 * 3 * 3);
  // 8x8 output positions * 16 filters * 27 macs each.
  EXPECT_EQ(cost.total_macs, 64 * 16 * 27);
  EXPECT_EQ(cost.total_flops, 2 * 64 * 16 * 27);
}

TEST(FlopsTest, LinearAndBiasCounted) {
  nn::Model m;
  m.input_shape = {6};
  m.num_classes = 2;
  m.net = std::make_unique<nn::Sequential>();
  m.net->add(std::make_unique<nn::Linear>(6, 2))->set_name("fc");
  const ModelCost cost = count(m);
  EXPECT_EQ(cost.total_params, 6 * 2 + 2);
  EXPECT_EQ(cost.total_macs, 12);
  EXPECT_EQ(cost.total_flops, 24 + 2);
}

TEST(FlopsTest, ParamsMatchModelParameterCount) {
  for (const char* arch : {"tiny", "vgg16", "resnet20"}) {
    nn::Model m = models::make_model(arch, tiny_cfg());
    const ModelCost cost = count(m);
    EXPECT_EQ(cost.total_params, m.parameter_count()) << arch;
  }
}

TEST(FlopsTest, FullWidthVgg16MagnitudeIsPlausible) {
  // Paper context: VGG16 on CIFAR (32x32) is ~0.31 GMAC. Verify our
  // counter lands in that well-known range at full width.
  models::BuildConfig cfg;
  cfg.num_classes = 10;
  cfg.input_size = 32;
  cfg.width_mult = 1.0f;
  nn::Model m = models::make_vgg16(cfg);
  const ModelCost cost = count(m);
  EXPECT_GT(cost.total_macs, 280'000'000);
  EXPECT_LT(cost.total_macs, 340'000'000);
  // ~14.7M params for conv-only VGG16 (no fc bulk in the CIFAR variant).
  EXPECT_GT(cost.total_params, 14'000'000);
  EXPECT_LT(cost.total_params, 16'000'000);
}

TEST(FlopsTest, FullWidthResnet56MagnitudeIsPlausible) {
  // ResNet-56 on CIFAR is ~127 MMACs and ~0.85M params.
  models::BuildConfig cfg;
  cfg.num_classes = 10;
  cfg.input_size = 32;
  cfg.width_mult = 1.0f;
  nn::Model m = models::make_resnet56(cfg);
  const ModelCost cost = count(m);
  EXPECT_GT(cost.total_macs, 115'000'000);
  EXPECT_LT(cost.total_macs, 140'000'000);
  EXPECT_GT(cost.total_params, 780'000);
  EXPECT_LT(cost.total_params, 950'000);
}

TEST(FlopsTest, PruningReportRatios) {
  ModelCost before, after;
  before.total_params = 1000;
  before.total_flops = 500;
  after.total_params = 250;
  after.total_flops = 400;
  const PruningReport r = compare(before, after);
  EXPECT_DOUBLE_EQ(r.pruning_ratio(), 0.75);
  EXPECT_DOUBLE_EQ(r.flops_reduction(), 0.2);
}

TEST(FlopsTest, SurgeryReducesCosts) {
  nn::Model m = models::make_tiny_cnn(tiny_cfg());
  const ModelCost before = count(m);
  core::remove_filters(m, 0, {0, 1});
  const ModelCost after = count(m);
  EXPECT_LT(after.total_params, before.total_params);
  EXPECT_LT(after.total_flops, before.total_flops);
  EXPECT_EQ(after.total_params, m.parameter_count());
}

}  // namespace
}  // namespace capr::flops
