#include "core/specialize.h"

#include <gtest/gtest.h>

#include "core/modified_loss.h"
#include "data/synthetic.h"
#include "models/builders.h"
#include "nn/trainer.h"

namespace capr::core {
namespace {

struct Fixture {
  nn::Model model;
  data::SyntheticCifar data;

  Fixture() {
    models::BuildConfig mcfg;
    mcfg.num_classes = 6;
    mcfg.input_size = 8;
    mcfg.width_mult = 0.5f;
    model = models::make_tiny_cnn(mcfg);
    data::SyntheticCifarConfig dcfg;
    dcfg.num_classes = 6;
    dcfg.train_per_class = 12;
    dcfg.test_per_class = 8;
    dcfg.image_size = 8;
    dcfg.noise_stddev = 0.15f;
    data = data::make_synthetic_cifar(dcfg);
    nn::TrainConfig tcfg;
    tcfg.epochs = 8;
    tcfg.batch_size = 24;
    tcfg.sgd.lr = 0.05f;
    ModifiedLoss reg;
    nn::train(model, data.train, tcfg, &reg);
  }

  SpecializeConfig config() const {
    SpecializeConfig cfg;
    cfg.importance.images_per_class = 4;
    cfg.importance.tau_mode = TauMode::kQuantile;
    cfg.max_fraction = 0.5f;
    cfg.finetune.epochs = 3;
    cfg.finetune.batch_size = 16;
    cfg.finetune.sgd.lr = 0.02f;
    return cfg;
  }
};

TEST(RestrictDatasetTest, FiltersAndRemapsLabels) {
  Fixture f;
  const data::Dataset sub = restrict_to_classes(f.data.train, {2, 5});
  EXPECT_EQ(sub.num_classes(), 2);
  EXPECT_EQ(sub.size(), 24);  // 12 per class * 2
  for (int64_t i = 0; i < sub.size(); ++i) {
    EXPECT_GE(sub.label(i), 0);
    EXPECT_LT(sub.label(i), 2);
  }
  EXPECT_EQ(static_cast<int64_t>(sub.indices_of_class(0).size()), 12);
}

TEST(RestrictDatasetTest, NonAscendingOrderRemaps) {
  Fixture f;
  const data::Dataset sub = restrict_to_classes(f.data.train, {5, 2});
  // Class 5 becomes label 0, class 2 becomes label 1.
  EXPECT_EQ(sub.num_classes(), 2);
  EXPECT_EQ(static_cast<int64_t>(sub.indices_of_class(0).size()), 12);
}

TEST(RestrictDatasetTest, Validation) {
  Fixture f;
  EXPECT_THROW(restrict_to_classes(f.data.train, {}), std::invalid_argument);
  EXPECT_THROW(restrict_to_classes(f.data.train, {0, 0}), std::invalid_argument);
  EXPECT_THROW(restrict_to_classes(f.data.train, {99}), std::out_of_range);
}

TEST(SpecializeTest, ShrinksHeadAndPrunes) {
  Fixture f;
  const int64_t params_before = f.model.parameter_count();
  const SpecializeResult res =
      specialize_to_classes(f.model, f.data.train, f.data.test, {0, 3, 4}, f.config());
  EXPECT_EQ(f.model.num_classes, 3);
  EXPECT_LT(f.model.parameter_count(), params_before);
  EXPECT_GT(res.report.pruning_ratio(), 0.0);
  // The specialized model still classifies the subset well.
  EXPECT_GT(res.subset_accuracy_after, 0.6f);
  // Forward output has 3 logits now.
  const data::Dataset sub = restrict_to_classes(f.data.test, {0, 3, 4});
  const Tensor logits = f.model.forward(sub.slice(0, 2).images, false);
  EXPECT_EQ(logits.shape(), (Shape{2, 3}));
}

TEST(SpecializeTest, HeadRowsMatchKeptClasses) {
  Fixture f;
  // Record the original head rows to verify the mapping.
  nn::Linear* head = nullptr;
  for (size_t i = f.model.net->size(); i-- > 0;) {
    if ((head = dynamic_cast<nn::Linear*>(&f.model.net->child(i))) != nullptr) break;
  }
  ASSERT_NE(head, nullptr);
  const Tensor w_before = head->weight().value;
  const int64_t in = head->in_features();

  SpecializeConfig cfg = f.config();
  cfg.max_fraction = 0.0001f;  // effectively no filter pruning: isolate head surgery
  cfg.finetune.epochs = 0;
  specialize_to_classes(f.model, f.data.train, f.data.test, {4, 1}, cfg);
  // Row 0 must be old class 4's row, row 1 old class 1's row.
  for (int64_t c = 0; c < in; ++c) {
    EXPECT_FLOAT_EQ(head->weight().value[0 * in + c], w_before[4 * in + c]);
    EXPECT_FLOAT_EQ(head->weight().value[1 * in + c], w_before[1 * in + c]);
  }
}

TEST(SpecializeTest, Validation) {
  Fixture f;
  EXPECT_THROW(
      specialize_to_classes(f.model, f.data.train, f.data.test, {0}, f.config()),
      std::invalid_argument);
  EXPECT_THROW(specialize_to_classes(f.model, f.data.train, f.data.test,
                                     {0, 1, 2, 3, 4, 5}, f.config()),
               std::invalid_argument);
}

TEST(SpecializeTest, SubsetScoresAreSubsetOfTotal) {
  // Filters important ONLY for dropped classes should be pruned more
  // eagerly than under whole-network pruning at the same budget — verify
  // via the importance bookkeeping: subset totals <= full totals.
  Fixture f;
  ImportanceEvaluator eval(f.config().importance);
  const ImportanceResult full = eval.evaluate(f.model, f.data.train);
  for (const UnitScores& u : full.units) {
    for (size_t filter = 0; filter < u.total.size(); ++filter) {
      float subset = 0.0f;
      for (int64_t cls : {0L, 3L, 4L}) {
        subset += u.per_class[static_cast<size_t>(cls)][filter];
      }
      EXPECT_LE(subset, u.total[filter] + 1e-5f);
    }
  }
}

}  // namespace
}  // namespace capr::core
