// BoundedQueue semantics: FIFO order, backpressure (try_push on a full
// queue), close/drain behaviour, micro-batch coalescing via drain_into /
// drain_until, and a multi-producer stress run. The stress tests double
// as the TSan targets for the serving queue (see CMakePresets.json).
#include "serve/queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace capr::serve {
namespace {

TEST(BoundedQueueTest, PopsInFifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(int{i}));
  for (int i = 0; i < 5; ++i) {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueueTest, TryPushFailsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.size(), 2u);
  // Popping frees a slot.
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_TRUE(q.try_push(3));
}

TEST(BoundedQueueTest, FailedTryPushDoesNotConsumeItem) {
  BoundedQueue<std::vector<int>> q(1);
  EXPECT_TRUE(q.try_push({1}));
  std::vector<int> item{2, 3, 4};
  EXPECT_FALSE(q.try_push(std::move(item)));
  // Moved-from only on success: the caller still owns the payload.
  EXPECT_EQ(item.size(), 3u);
}

TEST(BoundedQueueTest, ZeroCapacityIsClampedToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_FALSE(q.try_push(2));
}

TEST(BoundedQueueTest, CloseDrainsThenReturnsNullopt) {
  BoundedQueue<int> q(8);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  q.close();
  EXPECT_FALSE(q.try_push(3));
  // Accepted items are still delivered after close...
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  // ...and only then does pop() report exhaustion.
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueueTest, CloseWakesBlockedPop) {
  BoundedQueue<int> q(4);
  std::thread popper([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  popper.join();
}

TEST(BoundedQueueTest, CloseWakesBlockedPush) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.try_push(1));
  std::thread pusher([&] { EXPECT_FALSE(q.push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  pusher.join();
}

TEST(BoundedQueueTest, DrainIntoCoalescesWithoutBlocking) {
  BoundedQueue<int> q(16);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(q.try_push(int{i}));
  std::vector<int> batch;
  batch.push_back(q.pop().value());
  q.drain_into(batch, 4);
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.size(), 2u);
  // An empty queue leaves the batch untouched instead of waiting.
  q.drain_into(batch, 4);
  EXPECT_EQ(batch.size(), 4u);
}

TEST(BoundedQueueTest, DrainUntilReturnsAtDeadlineWhenEmpty) {
  BoundedQueue<int> q(4);
  std::vector<int> batch{42};
  const auto start = std::chrono::steady_clock::now();
  q.drain_until(batch, 4, start + std::chrono::milliseconds(20));
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_GE(std::chrono::steady_clock::now() - start, std::chrono::milliseconds(19));
}

TEST(BoundedQueueTest, DrainUntilPicksUpLateArrivals) {
  BoundedQueue<int> q(4);
  std::vector<int> batch;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    q.push(7);
  });
  q.drain_until(batch, 1, std::chrono::steady_clock::now() + std::chrono::seconds(5));
  producer.join();
  EXPECT_EQ(batch, std::vector<int>{7});
}

TEST(BoundedQueueTest, MultiProducerSingleConsumerDeliversEverything) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  BoundedQueue<int> q(8);  // small bound so producers actually block
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  std::vector<int> seen(kProducers * kPerProducer, 0);
  std::thread consumer([&] {
    std::vector<int> batch;
    for (int got = 0; got < kProducers * kPerProducer;) {
      batch.clear();
      const auto first = q.pop();
      ASSERT_TRUE(first.has_value());
      batch.push_back(*first);
      q.drain_into(batch, 16);
      for (int v : batch) ++seen[static_cast<size_t>(v)];
      got += static_cast<int>(batch.size());
    }
  });
  for (auto& t : producers) t.join();
  consumer.join();
  for (int v : seen) EXPECT_EQ(v, 1);  // each item exactly once
}

}  // namespace
}  // namespace capr::serve
