// BoundedQueue semantics: FIFO order, backpressure (try_push on a full
// queue), close/drain behaviour, micro-batch coalescing via drain_into /
// drain_until, and a multi-producer stress run. The stress tests double
// as the TSan targets for the serving queue (see CMakePresets.json).
//
// Multi-tenant scheduling contract (tickets): priorities pop highest
// first with an EXACT, deterministic starvation bound (pop-count aging,
// so the tests can pin the bound), and per-tenant quotas shed
// immediately — a zero-quota tenant gets kOverQuota/kRejected, never a
// deadlock, even on the blocking push against a full queue.
#include "serve/queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "models/builders.h"
#include "serve/server.h"
#include "serve/session.h"

namespace capr::serve {
namespace {

TEST(BoundedQueueTest, PopsInFifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(int{i}));
  for (int i = 0; i < 5; ++i) {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueueTest, TryPushFailsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.size(), 2u);
  // Popping frees a slot.
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_TRUE(q.try_push(3));
}

TEST(BoundedQueueTest, FailedTryPushDoesNotConsumeItem) {
  BoundedQueue<std::vector<int>> q(1);
  EXPECT_TRUE(q.try_push({1}));
  std::vector<int> item{2, 3, 4};
  EXPECT_FALSE(q.try_push(std::move(item)));
  // Moved-from only on success: the caller still owns the payload.
  EXPECT_EQ(item.size(), 3u);
}

TEST(BoundedQueueTest, ZeroCapacityIsClampedToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_FALSE(q.try_push(2));
}

TEST(BoundedQueueTest, CloseDrainsThenReturnsNullopt) {
  BoundedQueue<int> q(8);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  q.close();
  EXPECT_FALSE(q.try_push(3));
  // Accepted items are still delivered after close...
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  // ...and only then does pop() report exhaustion.
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueueTest, CloseWakesBlockedPop) {
  BoundedQueue<int> q(4);
  std::thread popper([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  popper.join();
}

TEST(BoundedQueueTest, CloseWakesBlockedPush) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.try_push(1));
  std::thread pusher([&] { EXPECT_FALSE(q.push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  pusher.join();
}

TEST(BoundedQueueTest, DrainIntoCoalescesWithoutBlocking) {
  BoundedQueue<int> q(16);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(q.try_push(int{i}));
  std::vector<int> batch;
  batch.push_back(q.pop().value());
  q.drain_into(batch, 4);
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.size(), 2u);
  // An empty queue leaves the batch untouched instead of waiting.
  q.drain_into(batch, 4);
  EXPECT_EQ(batch.size(), 4u);
}

TEST(BoundedQueueTest, DrainUntilReturnsAtDeadlineWhenEmpty) {
  BoundedQueue<int> q(4);
  std::vector<int> batch{42};
  const auto start = std::chrono::steady_clock::now();
  q.drain_until(batch, 4, start + std::chrono::milliseconds(20));
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_GE(std::chrono::steady_clock::now() - start, std::chrono::milliseconds(19));
}

TEST(BoundedQueueTest, DrainUntilPicksUpLateArrivals) {
  BoundedQueue<int> q(4);
  std::vector<int> batch;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    q.push(7);
  });
  q.drain_until(batch, 1, std::chrono::steady_clock::now() + std::chrono::seconds(5));
  producer.join();
  EXPECT_EQ(batch, std::vector<int>{7});
}

TEST(BoundedQueueTest, TicketedPopsHighestPriorityFirstFifoWithin) {
  BoundedQueue<int> q(8);
  q.set_starvation_limit(0);  // pure priority order for this test
  EXPECT_EQ(q.try_push(10, Ticket{0, 0}), PushStatus::kOk);
  EXPECT_EQ(q.try_push(20, Ticket{0, 2}), PushStatus::kOk);
  EXPECT_EQ(q.try_push(11, Ticket{0, 0}), PushStatus::kOk);
  EXPECT_EQ(q.try_push(30, Ticket{0, 5}), PushStatus::kOk);
  EXPECT_EQ(q.try_push(21, Ticket{0, 2}), PushStatus::kOk);
  // Highest priority first; FIFO inside each level.
  EXPECT_EQ(q.pop().value(), 30);
  EXPECT_EQ(q.pop().value(), 20);
  EXPECT_EQ(q.pop().value(), 21);
  EXPECT_EQ(q.pop().value(), 10);
  EXPECT_EQ(q.pop().value(), 11);
}

TEST(BoundedQueueTest, StarvationBoundIsExact) {
  // The oldest item is passed over at most L times: with L = 3 a
  // low-priority item queued first is served on the 4th pop, after
  // EXACTLY 3 high-priority overtakes — pop-count aging is deterministic.
  BoundedQueue<int> q(16);
  q.set_starvation_limit(3);
  EXPECT_EQ(q.try_push(0, Ticket{0, 0}), PushStatus::kOk);  // the starved one
  for (int i = 1; i <= 6; ++i) {
    EXPECT_EQ(q.try_push(int{i}, Ticket{0, 1}), PushStatus::kOk);
  }
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
  EXPECT_EQ(q.pop().value(), 0);  // the aging bound kicks in
  EXPECT_EQ(q.pop().value(), 4);
  EXPECT_EQ(q.pop().value(), 5);
  EXPECT_EQ(q.pop().value(), 6);
}

TEST(BoundedQueueTest, ZeroQuotaTenantShedsEvenOnBlockingPush) {
  BoundedQueue<int> q(1);
  q.set_quota(7, 0);  // outright ban
  EXPECT_EQ(q.try_push(1, Ticket{7, 0}), PushStatus::kOverQuota);
  // The blocking push must shed BEFORE waiting for capacity: fill the
  // queue so a capacity wait would block forever, then push as the
  // banned tenant — it has to return immediately.
  EXPECT_EQ(q.try_push(1, Ticket{0, 0}), PushStatus::kOk);
  EXPECT_EQ(q.push(2, Ticket{7, 0}), PushStatus::kOverQuota);
  // Other tenants are unaffected (beyond normal capacity).
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.push(3, Ticket{0, 0}), PushStatus::kOk);
}

TEST(BoundedQueueTest, QuotaIsPerQueuedItemAndReleasedOnPop) {
  BoundedQueue<int> q(8);
  q.set_quota(3, 2);
  EXPECT_EQ(q.try_push(1, Ticket{3, 0}), PushStatus::kOk);
  EXPECT_EQ(q.try_push(2, Ticket{3, 0}), PushStatus::kOk);
  EXPECT_EQ(q.try_push(3, Ticket{3, 0}), PushStatus::kOverQuota);
  EXPECT_EQ(q.queued_for(3), 2u);
  // An unthrottled tenant still has the rest of the capacity.
  EXPECT_EQ(q.try_push(4, Ticket{0, 0}), PushStatus::kOk);
  // Popping one of the tenant's items frees its quota slot.
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.queued_for(3), 1u);
  EXPECT_EQ(q.try_push(5, Ticket{3, 0}), PushStatus::kOk);
}

TEST(BoundedQueueTest, FailedTicketedPushDoesNotConsumeItem) {
  BoundedQueue<std::vector<int>> q(8);
  q.set_quota(1, 0);
  std::vector<int> item{1, 2, 3};
  EXPECT_EQ(q.try_push(std::move(item), Ticket{1, 0}), PushStatus::kOverQuota);
  EXPECT_EQ(item.size(), 3u);  // moved-from only on kOk
  EXPECT_EQ(q.push(std::move(item), Ticket{1, 0}), PushStatus::kOverQuota);
  EXPECT_EQ(item.size(), 3u);
}

TEST(BoundedQueueTest, MultiProducerSingleConsumerDeliversEverything) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  BoundedQueue<int> q(8);  // small bound so producers actually block
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  std::vector<int> seen(kProducers * kPerProducer, 0);
  std::thread consumer([&] {
    std::vector<int> batch;
    for (int got = 0; got < kProducers * kPerProducer;) {
      batch.clear();
      const auto first = q.pop();
      ASSERT_TRUE(first.has_value());
      batch.push_back(*first);
      q.drain_into(batch, 16);
      for (int v : batch) ++seen[static_cast<size_t>(v)];
      got += static_cast<int>(batch.size());
    }
  });
  for (auto& t : producers) t.join();
  consumer.join();
  for (int v : seen) EXPECT_EQ(v, 1);  // each item exactly once
}

// Server-level view of the same contracts: the ticket rides in through
// SubmitOptions and the shed comes back as a ready kRejected future.

models::BuildConfig tiny_cfg() {
  models::BuildConfig cfg;
  cfg.num_classes = 4;
  cfg.input_size = 8;
  cfg.width_mult = 0.5f;
  return cfg;
}

TEST(ServerTenantTest, ZeroQuotaTenantGetsRejectedNotDeadlock) {
  auto session = std::make_shared<const InferenceSession>(
      InferenceSession(models::make_model("tiny", tiny_cfg())));
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 2;  // small enough that a blocking wait would hang
  cfg.tenant_quotas = {{7, 0}};
  InferenceServer server(session, cfg);
  const Shape& in = session->input_shape();
  Tensor sample({in[0], in[1], in[2]});

  SubmitOptions banned;
  banned.tenant = 7;
  // The BLOCKING submit resolves immediately with kRejected — a banned
  // tenant must never wait behind the backlog it is not allowed to join.
  InferResult res = server.submit(sample, banned).get();
  EXPECT_EQ(res.status, RequestStatus::kRejected);
  auto try_res = server.try_submit(sample, banned);
  ASSERT_TRUE(try_res.has_value());  // a real (ready) future, not backpressure
  EXPECT_EQ(try_res->get().status, RequestStatus::kRejected);
  EXPECT_EQ(server.stats().rejected, 2u);

  // The default tenant is untouched.
  EXPECT_EQ(server.submit(sample).get().status, RequestStatus::kOk);
}

TEST(ServerTenantTest, QuotaShedsOnlyTheTenantOverItsCap) {
  auto session = std::make_shared<const InferenceSession>(
      InferenceSession(models::make_model("tiny", tiny_cfg())));
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 16;
  cfg.tenant_quotas = {{2, 1}};
  InferenceServer server(session, cfg);
  const Shape& in = session->input_shape();
  Tensor sample({in[0], in[1], in[2]});

  SubmitOptions capped;
  capped.tenant = 2;
  // Burst past the quota: at most one of tenant 2's requests may be
  // queued at a time, so a synchronous burst of 8 sees some shed with
  // kRejected while every accepted one completes kOk.
  int ok = 0, shed = 0;
  std::vector<std::future<InferResult>> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(server.submit(sample, capped));
  for (auto& f : futs) {
    const RequestStatus s = f.get().status;
    if (s == RequestStatus::kOk) ++ok;
    if (s == RequestStatus::kRejected) ++shed;
  }
  EXPECT_EQ(ok + shed, 8);
  EXPECT_GT(ok, 0);
}

TEST(ServerTenantTest, ExpiredHighPriorityTimesOutWhileLowPriorityCompletes) {
  auto session = std::make_shared<const InferenceSession>(
      InferenceSession(models::make_model("tiny", tiny_cfg())));
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 1;
  InferenceServer server(session, cfg);
  const Shape& in = session->input_shape();
  Tensor sample({in[0], in[1], in[2]});

  // An expired deadline on the HIGH-priority request: the worker picks
  // it up first (priority) and rejects it with kTimeout; the valid
  // low-priority request still completes. Deadline enforcement and
  // priority pickup compose instead of masking each other.
  SubmitOptions urgent;
  urgent.priority = 5;
  urgent.deadline = InferenceServer::Clock::now() - std::chrono::milliseconds(1);
  SubmitOptions relaxed;
  relaxed.priority = 0;
  auto expired = server.submit(sample, urgent);
  auto valid = server.submit(sample, relaxed);
  EXPECT_EQ(expired.get().status, RequestStatus::kTimeout);
  EXPECT_EQ(valid.get().status, RequestStatus::kOk);
  EXPECT_GE(server.stats().timed_out, 1u);
}

}  // namespace
}  // namespace capr::serve
