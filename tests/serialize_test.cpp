#include "tensor/serialize.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "test_util.h"

namespace capr {
namespace {

TEST(SerializeTest, TensorStreamRoundTrip) {
  const Tensor t = testing::random_tensor({3, 4, 5}, 100);
  std::stringstream ss;
  write_tensor(ss, t);
  const Tensor back = read_tensor(ss);
  EXPECT_EQ(back.shape(), t.shape());
  EXPECT_TRUE(back.allclose(t, 0.0f));
}

TEST(SerializeTest, EmptyTensorRoundTrip) {
  std::stringstream ss;
  write_tensor(ss, Tensor());
  const Tensor back = read_tensor(ss);
  EXPECT_EQ(back.numel(), 0);
}

TEST(SerializeTest, MapRoundTripThroughFile) {
  std::map<std::string, Tensor> m;
  m["a.weight"] = testing::random_tensor({2, 3}, 101);
  m["b.bias"] = testing::random_tensor({7}, 102);
  m["deep.nested.name"] = Tensor({1}, 42.0f);
  const std::string path = ::testing::TempDir() + "capr_map.ckpt";
  save_tensor_map(path, m);
  const auto back = load_tensor_map(path);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_TRUE(back.at("a.weight").allclose(m["a.weight"], 0.0f));
  EXPECT_TRUE(back.at("b.bias").allclose(m["b.bias"], 0.0f));
  EXPECT_FLOAT_EQ(back.at("deep.nested.name")[0], 42.0f);
}

TEST(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(load_tensor_map("/nonexistent/dir/x.ckpt"), std::runtime_error);
}

TEST(SerializeTest, CorruptMagicThrows) {
  const std::string path = ::testing::TempDir() + "capr_bad.ckpt";
  {
    std::ofstream os(path, std::ios::binary);
    os << "not a checkpoint at all";
  }
  EXPECT_THROW(load_tensor_map(path), std::runtime_error);
}

TEST(SerializeTest, TruncatedPayloadThrows) {
  std::map<std::string, Tensor> m;
  m["w"] = testing::random_tensor({100}, 103);
  const std::string path = ::testing::TempDir() + "capr_trunc.ckpt";
  save_tensor_map(path, m);
  // Truncate the file.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)), {});
  in.close();
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(contents.data(), static_cast<std::streamsize>(contents.size() / 2));
  }
  EXPECT_THROW(load_tensor_map(path), std::runtime_error);
}

TEST(SerializeTest, ImplausibleRankThrows) {
  std::stringstream ss;
  const uint32_t rank = 9;  // read_tensor caps rank at 8
  ss.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
  EXPECT_THROW(read_tensor(ss), std::runtime_error);
}

TEST(SerializeTest, NonPositiveExtentThrows) {
  std::stringstream ss;
  const uint32_t rank = 2;
  const int64_t extents[2] = {3, -4};
  ss.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
  ss.write(reinterpret_cast<const char*>(extents), sizeof(extents));
  EXPECT_THROW(read_tensor(ss), std::runtime_error);
}

TEST(SerializeTest, OverflowingExtentProductThrows) {
  // Two extents whose product overflows int64 must be rejected before
  // any allocation happens, not wrap around to a small positive numel.
  std::stringstream ss;
  const uint32_t rank = 2;
  const int64_t extents[2] = {int64_t{1} << 32, int64_t{1} << 32};
  ss.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
  ss.write(reinterpret_cast<const char*>(extents), sizeof(extents));
  EXPECT_THROW(read_tensor(ss), std::runtime_error);
}

TEST(SerializeTest, UnsupportedVersionThrows) {
  const std::string path = ::testing::TempDir() + "capr_badver.ckpt";
  {
    std::ofstream os(path, std::ios::binary);
    const uint32_t magic = 0x52504143;  // "CAPR"
    const uint32_t version = 999;
    os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    os.write(reinterpret_cast<const char*>(&version), sizeof(version));
  }
  EXPECT_THROW(load_tensor_map(path), std::runtime_error);
}

}  // namespace
}  // namespace capr
