// Differential tests of the tiled GEMM against the reference kernel:
// adversarial tile-remainder shapes, and the exact im2col GEMM shapes
// every builder architecture lowers to.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/shape_inference.h"
#include "models/builders.h"
#include "nn/conv2d.h"
#include "tensor/gemm.h"
#include "tensor/gemm_tiled.h"
#include "tensor/im2col.h"
#include "tensor/rng.h"
#include "testutil/testutil.h"
#include "verify/shape_sweep.h"

namespace capr {
namespace {

using verify::GemmShape;
using verify::SweepOptions;
using verify::SweepResult;

TEST(GemmTiledRemainderTest, ShapeGridCoversAllTileEdges) {
  const std::vector<GemmShape> shapes = verify::remainder_gemm_shapes();
  // 8 M-values x 6 K-values x 8 N-values; every M/N is <= 31 so each
  // shape exercises partial strips/panels, and K spans the KC boundary.
  EXPECT_EQ(shapes.size(), 8u * 6u * 8u);
  const auto has = [&](int64_t m, int64_t k, int64_t n) {
    return std::any_of(shapes.begin(), shapes.end(), [&](const GemmShape& s) {
      return s.m == m && s.k == k && s.n == n;
    });
  };
  EXPECT_TRUE(has(1, 1, 1));        // degenerate minimum
  EXPECT_TRUE(has(5, 255, 15));     // one under every tile boundary
  EXPECT_TRUE(has(7, 257, 17));     // one over every tile boundary
  EXPECT_TRUE(has(31, 127, 31));    // primes, coprime to MR/NR/KC
}

TEST(GemmTiledRemainderTest, TiledMatchesReferenceOnRemainderGrid) {
  const SweepResult r = verify::sweep_gemm_tiled(verify::remainder_gemm_shapes());
  EXPECT_TRUE(r.ok()) << r.first_failure;
  EXPECT_EQ(r.failures, 0) << r.first_failure;
}

/// The (M, K, N) GEMM problems conv lowering produces for one model:
/// forward computes [Cout, Cin*k*k] x [Cin*k*k, OH*OW] per image.
std::vector<GemmShape> im2col_gemm_shapes(const std::string& arch) {
  models::BuildConfig cfg;
  nn::Model model = models::make_model(arch, cfg);

  std::vector<nn::Conv2d*> convs;
  model.net->visit([&](nn::Layer& l) {
    if (auto* c = dynamic_cast<nn::Conv2d*>(&l)) convs.push_back(c);
  });

  const analysis::ShapeTrace trace = analysis::infer_shapes(model);
  EXPECT_TRUE(trace.report.ok()) << arch << ": shape inference failed";

  std::vector<GemmShape> shapes;
  size_t ci = 0;
  for (const analysis::ShapeStep& step : trace.steps) {
    if (step.kind != "conv2d") continue;
    if (ci >= convs.size()) {
      ADD_FAILURE() << arch << ": more conv steps than conv layers";
      return shapes;
    }
    nn::Conv2d* conv = convs[ci++];
    EXPECT_EQ(step.in.size(), 3u);
    EXPECT_EQ(step.in[0], conv->in_channels()) << arch << " layer " << step.layer;
    EXPECT_EQ(step.out[0], conv->out_channels()) << arch << " layer " << step.layer;
    shapes.push_back({conv->out_channels(),
                      conv->in_channels() * conv->kernel() * conv->kernel(),
                      step.out[1] * step.out[2]});
  }
  EXPECT_EQ(ci, convs.size()) << arch << ": conv layer/step count mismatch";
  // Dedupe repeated layer shapes (ResNet stages repeat identical blocks).
  std::sort(shapes.begin(), shapes.end(), [](const GemmShape& a, const GemmShape& b) {
    return std::tie(a.m, a.k, a.n) < std::tie(b.m, b.k, b.n);
  });
  shapes.erase(std::unique(shapes.begin(), shapes.end(),
                           [](const GemmShape& a, const GemmShape& b) {
                             return a.m == b.m && a.k == b.k && a.n == b.n;
                           }),
               shapes.end());
  return shapes;
}

class ArchGemmShapeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ArchGemmShapeTest, TiledMatchesReferenceOnArchShapes) {
  const std::vector<GemmShape> shapes = im2col_gemm_shapes(GetParam());
  ASSERT_FALSE(shapes.empty());
  SweepOptions opts;
  opts.seed = 0xA2C4;
  const SweepResult r = verify::sweep_gemm_tiled(shapes, opts);
  EXPECT_EQ(r.configs_run, static_cast<int>(shapes.size()));
  EXPECT_TRUE(r.ok()) << GetParam() << ": " << r.first_failure;
}

INSTANTIATE_TEST_SUITE_P(AllBuilderArchs, ArchGemmShapeTest,
                         ::testing::ValuesIn(models::available_archs()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(GemmTiledEdgeTest, EmptyExtentsAreHandled) {
  // K=0 must zero (or preserve, under accumulate) C without reading A/B.
  std::vector<float> c{1.0f, 2.0f, 3.0f, 4.0f};
  gemm_tiled(nullptr, nullptr, c.data(), 2, 0, 2);
  EXPECT_EQ(c, (std::vector<float>{0.0f, 0.0f, 0.0f, 0.0f}));
  c = {1.0f, 2.0f, 3.0f, 4.0f};
  gemm_tiled(nullptr, nullptr, c.data(), 2, 0, 2, /*accumulate=*/true);
  EXPECT_EQ(c, (std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f}));
}

TEST(GemmTiledEdgeTest, ScratchReuseAcrossDifferentShapes) {
  // A shared GemmScratch must be safe to reuse as sizes grow and shrink.
  GemmScratch scratch;
  Rng rng(77);
  for (int64_t mkn : {300L, 7L, 65L, 1L, 130L}) {
    Tensor a({mkn, mkn}), b({mkn, mkn});
    rng.fill_uniform(a, -1.0f, 1.0f);
    rng.fill_uniform(b, -1.0f, 1.0f);
    Tensor got({mkn, mkn}), want({mkn, mkn});
    gemm_tiled(a.data(), b.data(), got.data(), mkn, mkn, mkn, false, &scratch);
    gemm(a.data(), b.data(), want.data(), mkn, mkn, mkn);
    const auto rep = testing::allclose_report(got, want, 1e-4f, 1e-3f);
    EXPECT_TRUE(rep.ok) << "mkn=" << mkn << ": " << rep.message;
  }
}

}  // namespace
}  // namespace capr
