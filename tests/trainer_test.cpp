#include "nn/trainer.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "models/builders.h"

namespace capr::nn {
namespace {

data::SyntheticCifar small_data(int64_t classes = 3) {
  data::SyntheticCifarConfig cfg;
  cfg.num_classes = classes;
  cfg.train_per_class = 16;
  cfg.test_per_class = 8;
  cfg.image_size = 8;
  cfg.noise_stddev = 0.1f;
  return data::make_synthetic_cifar(cfg);
}

Model small_model(int64_t classes = 3) {
  models::BuildConfig cfg;
  cfg.num_classes = classes;
  cfg.input_size = 8;
  cfg.width_mult = 0.5f;
  return models::make_tiny_cnn(cfg);
}

TEST(TrainerTest, LossDecreasesOverEpochs) {
  Model m = small_model();
  const auto data = small_data();
  std::vector<float> losses;
  TrainConfig cfg;
  cfg.epochs = 6;
  cfg.batch_size = 16;
  cfg.sgd.lr = 0.05f;
  cfg.on_epoch = [&losses](int, float loss) { losses.push_back(loss); };
  const TrainStats stats = train(m, data.train, cfg);
  EXPECT_EQ(stats.epochs_run, 6);
  ASSERT_EQ(losses.size(), 6u);
  EXPECT_LT(losses.back(), losses.front() * 0.8f);
}

TEST(TrainerTest, LearnsSeparableClasses) {
  Model m = small_model();
  const auto data = small_data();
  TrainConfig cfg;
  cfg.epochs = 12;
  cfg.batch_size = 16;
  cfg.sgd.lr = 0.05f;
  train(m, data.train, cfg);
  // Synthetic classes are learnable well above chance (1/3).
  EXPECT_GT(evaluate(m, data.test), 0.7f);
}

TEST(TrainerTest, LrDecayApplies) {
  Model m = small_model();
  const auto data = small_data();
  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = 16;
  cfg.lr_decay = 0.1f;
  cfg.lr_decay_every = 2;
  EXPECT_NO_THROW(train(m, data.train, cfg));
}

TEST(TrainerTest, EvaluateLossIsFiniteAndConsistent) {
  Model m = small_model();
  const auto data = small_data();
  const float l1 = evaluate_loss(m, data.test, 8);
  const float l2 = evaluate_loss(m, data.test, 24);
  EXPECT_NEAR(l1, l2, 1e-3f);  // batching must not change the mean loss
  EXPECT_GT(l1, 0.0f);
}

TEST(TrainerTest, DeterministicGivenSeeds) {
  const auto data = small_data();
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 16;
  Model a = small_model();
  Model b = small_model();
  train(a, data.train, cfg);
  train(b, data.train, cfg);
  const Tensor x = data.test.slice(0, 4).images;
  EXPECT_TRUE(a.forward(x, false).allclose(b.forward(x, false), 1e-6f));
}

TEST(TrainerTest, RegularizerReceivesCalls) {
  struct Counter final : Regularizer {
    int calls = 0;
    float apply(Model&) override {
      ++calls;
      return 0.0f;
    }
  };
  Model m = small_model();
  const auto data = small_data();
  Counter reg;
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 16;
  train(m, data.train, cfg, &reg);
  EXPECT_EQ(reg.calls, 2 * 3);  // 48 samples / 16 per batch * 2 epochs
}

}  // namespace
}  // namespace capr::nn
