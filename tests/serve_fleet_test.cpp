// Fleet serving contract tests: the ModelRegistry and hot-swap path.
//
// The load-bearing guarantees, in test order:
//   - registry bookkeeping (publish/find/remove/version) is atomic and
//     concurrent publishes never corrupt it;
//   - an incompatible or uncertified publish throws and the live variant
//     keeps serving, untouched;
//   - requests route by model id and stay bitwise-identical to the
//     training-side forward of the routed variant;
//   - a hot-swap under full client load drops NOTHING: every request
//     completes kOk and is bitwise-equal to either the old or the new
//     variant (never a half-swapped mix);
//   - the displaced session drains by refcount — it is destroyed exactly
//     when the last in-flight holder lets go, never earlier.
// FleetStressTest is the TSan lane target (see CMakePresets.json):
// publish / route / shutdown racing freely on one server.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/surgeon.h"
#include "models/builders.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "serve/session.h"
#include "tensor/rng.h"
#include "tensor/serialize.h"

namespace capr {
namespace {

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

bool row_equals(const Tensor& logits, int64_t row, const Tensor& single) {
  const int64_t classes = logits.dim(1);
  return single.numel() == classes &&
         std::memcmp(logits.data() + row * classes, single.data(),
                     static_cast<size_t>(classes) * sizeof(float)) == 0;
}

models::BuildConfig small_cfg() {
  models::BuildConfig cfg;
  cfg.num_classes = 4;
  cfg.input_size = 8;
  cfg.width_mult = 0.5f;
  return cfg;
}

Tensor random_batch(const Shape& in, int64_t n, uint64_t seed) {
  Tensor x({n, in[0], in[1], in[2]});
  Rng rng(seed);
  rng.fill_normal(x, 0.0f, 1.0f);
  return x;
}

Tensor sample_of(const Tensor& batch, int64_t i) {
  const int64_t per = batch.numel() / batch.dim(0);
  Tensor s({batch.dim(1), batch.dim(2), batch.dim(3)});
  std::memcpy(s.data(), batch.data() + i * per, static_cast<size_t>(per) * sizeof(float));
  return s;
}

// The builder is deterministic (same arch + cfg -> same weights), so
// pruning one filter yields a second variant with the same serving
// contract (input shape, class count) but different logits — exactly
// what a real pruned redeploy looks like.
nn::Model make_pruned_tiny(const models::BuildConfig& cfg) {
  nn::Model m = models::make_model("tiny", cfg);
  EXPECT_GE(m.units[0].conv->out_channels(), 2);
  core::remove_filters(m, 0, {1});
  return m;
}

std::shared_ptr<const serve::InferenceSession> session_of(nn::Model model) {
  return std::make_shared<const serve::InferenceSession>(
      serve::InferenceSession(std::move(model)));
}

serve::SubmitOptions route_to(const std::string& id) {
  serve::SubmitOptions opts;
  opts.model = id;
  return opts;
}

TEST(ModelRegistryTest, PublishFindRemoveVersioning) {
  serve::ModelRegistry reg;
  EXPECT_EQ(reg.find("a"), nullptr);
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_EQ(reg.version("a"), 0u);

  auto a1 = session_of(models::make_model("tiny", small_cfg()));
  auto a2 = session_of(make_pruned_tiny(small_cfg()));
  EXPECT_EQ(reg.publish("a", a1, /*warm_batch=*/0), nullptr);
  EXPECT_EQ(reg.find("a").get(), a1.get());
  EXPECT_EQ(reg.version("a"), 1u);

  // Republishing returns the displaced session and bumps the version.
  EXPECT_EQ(reg.publish("a", a2, 0).get(), a1.get());
  EXPECT_EQ(reg.find("a").get(), a2.get());
  EXPECT_EQ(reg.version("a"), 2u);

  reg.publish("b", a1, 0);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.ids(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(reg.publishes(), 3u);

  EXPECT_TRUE(reg.remove("a"));
  EXPECT_FALSE(reg.remove("a"));
  EXPECT_EQ(reg.find("a"), nullptr);
  EXPECT_EQ(reg.version("a"), 0u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ModelRegistryTest, RejectsNullAndIncompatiblePublish) {
  serve::ModelRegistry reg;
  EXPECT_THROW(reg.publish("a", nullptr), std::invalid_argument);

  auto live = session_of(models::make_model("tiny", small_cfg()));
  reg.publish("a", live, 0);

  // A swap must not change the serving contract mid-stream: different
  // class count and different input size are both rejected...
  models::BuildConfig other = small_cfg();
  other.num_classes = 6;
  EXPECT_THROW(reg.publish("a", session_of(models::make_model("tiny", other)), 0),
               std::invalid_argument);
  other = small_cfg();
  other.input_size = 16;
  EXPECT_THROW(reg.publish("a", session_of(models::make_model("tiny", other)), 0),
               std::invalid_argument);

  // ...and the live variant is untouched by the failed attempts.
  EXPECT_EQ(reg.find("a").get(), live.get());
  EXPECT_EQ(reg.version("a"), 1u);
  EXPECT_EQ(reg.publishes(), 1u);

  // A different id is a fresh contract — the same session is fine there.
  other = small_cfg();
  other.num_classes = 6;
  EXPECT_NO_THROW(reg.publish("b", session_of(models::make_model("tiny", other)), 0));
}

TEST(ModelRegistryTest, RejectsUncertifiedCheckpointAndKeepsServing) {
  const models::BuildConfig cfg = small_cfg();
  serve::ModelRegistry reg;
  auto live = session_of(models::make_model("tiny", cfg));
  reg.publish("m", live, 0);

  // Wrong architecture: a vgg11 checkpoint cannot replay into resnet20.
  const std::string wrong = ::testing::TempDir() + "capr_fleet_wrongarch.ckpt";
  save_tensor_map(wrong, models::make_model("vgg11", cfg).state_dict());
  EXPECT_THROW(reg.publish_checkpoint("m", "resnet20", cfg, wrong), std::exception);

  // Tampered: drop one tensor from an otherwise valid checkpoint.
  const std::string tampered = ::testing::TempDir() + "capr_fleet_tampered.ckpt";
  std::map<std::string, Tensor> state = models::make_model("tiny", cfg).state_dict();
  ASSERT_FALSE(state.empty());
  state.erase(state.begin());
  save_tensor_map(tampered, state);
  EXPECT_THROW(reg.publish_checkpoint("m", "tiny", cfg, tampered), std::exception);

  // Unreadable path.
  EXPECT_THROW(reg.publish_checkpoint("m", "tiny", cfg, "/nonexistent/no.ckpt"),
               std::exception);

  // Every rejection left the live variant serving, untouched.
  EXPECT_EQ(reg.find("m").get(), live.get());
  EXPECT_EQ(reg.version("m"), 1u);
  EXPECT_EQ(reg.publishes(), 1u);
}

TEST(ModelRegistryTest, CertifiedCheckpointPublishServesBitwise) {
  const models::BuildConfig cfg = small_cfg();
  nn::Model pruned = make_pruned_tiny(cfg);
  const Tensor x = random_batch(pruned.input_shape, 3, 41);
  const Tensor want = pruned.forward(x, /*training=*/false);
  const std::string path = ::testing::TempDir() + "capr_fleet_pruned.ckpt";
  save_tensor_map(path, pruned.state_dict());

  serve::ModelRegistry reg;
  reg.publish("m", session_of(models::make_model("tiny", cfg)), 0);
  auto displaced = reg.publish_checkpoint("m", "tiny", cfg, path);
  ASSERT_NE(displaced, nullptr);
  EXPECT_EQ(reg.version("m"), 2u);

  nn::InferScratch scratch;
  EXPECT_TRUE(bitwise_equal(reg.find("m")->run(x, scratch), want));
}

TEST(ModelRegistryTest, ConcurrentPublishesAreAtomic) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  auto sess = session_of(models::make_model("tiny", small_cfg()));
  serve::ModelRegistry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) reg.publish("shared", sess, 0);
      reg.publish("t" + std::to_string(t), sess, 0);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.version("shared"), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(reg.size(), static_cast<size_t>(kThreads + 1));
  EXPECT_EQ(reg.publishes(), static_cast<uint64_t>(kThreads * kPerThread + kThreads));
}

TEST(FleetRoutingTest, RoutesByModelIdBitwise) {
  const models::BuildConfig cfg = small_cfg();
  nn::Model dense = models::make_model("tiny", cfg);
  nn::Model pruned = make_pruned_tiny(cfg);
  const Tensor x = random_batch(dense.input_shape, 4, 43);
  const Tensor want_dense = dense.forward(x, false);
  const Tensor want_pruned = pruned.forward(x, false);
  ASSERT_FALSE(bitwise_equal(want_dense, want_pruned));  // variants must differ

  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->publish("dense", session_of(std::move(dense)), 0);
  registry->publish("pruned", session_of(std::move(pruned)), 0);

  serve::ServerConfig scfg;
  scfg.workers = 2;
  scfg.max_batch = 8;  // mixed-model coalescing: workers partition by session
  scfg.default_model = "dense";
  serve::InferenceServer server(registry, scfg);

  std::vector<std::future<serve::InferResult>> dense_futs, pruned_futs;
  for (int64_t i = 0; i < x.dim(0); ++i) {
    dense_futs.push_back(server.submit(sample_of(x, i)));  // default route
    pruned_futs.push_back(server.submit(sample_of(x, i), route_to("pruned")));
  }
  for (int64_t i = 0; i < x.dim(0); ++i) {
    serve::InferResult d = dense_futs[static_cast<size_t>(i)].get();
    serve::InferResult p = pruned_futs[static_cast<size_t>(i)].get();
    ASSERT_EQ(d.status, serve::RequestStatus::kOk) << d.error;
    ASSERT_EQ(p.status, serve::RequestStatus::kOk) << p.error;
    EXPECT_TRUE(row_equals(want_dense, i, d.output)) << "dense row " << i;
    EXPECT_TRUE(row_equals(want_pruned, i, p.output)) << "pruned row " << i;
  }

  // An unbound id resolves immediately — blocking and non-blocking alike.
  auto unknown = server.submit(sample_of(x, 0), route_to("nope"));
  EXPECT_EQ(unknown.get().status, serve::RequestStatus::kUnknownModel);
  auto try_unknown = server.try_submit(sample_of(x, 0), route_to("nope"));
  ASSERT_TRUE(try_unknown.has_value());
  EXPECT_EQ(try_unknown->get().status, serve::RequestStatus::kUnknownModel);
  EXPECT_EQ(server.stats().unknown_model, 2u);
  EXPECT_EQ(server.stats().errored, 0u);
}

// The headline hot-swap guarantee: 4 workers, 4 client threads at full
// blocking load, repeated concurrent publishes flipping the variant —
// and still zero dropped/errored requests, with every response
// bitwise-equal to the OLD or the NEW variant's training forward.
TEST(FleetHotSwapTest, ZeroDowntimeUnderConcurrentPublishes) {
  const models::BuildConfig cfg = small_cfg();
  nn::Model model_a = models::make_model("tiny", cfg);
  nn::Model model_b = make_pruned_tiny(cfg);
  constexpr int64_t kSamples = 8;
  const Tensor x = random_batch(model_a.input_shape, kSamples, 47);
  const Tensor want_a = model_a.forward(x, false);
  const Tensor want_b = model_b.forward(x, false);
  auto sess_a = session_of(std::move(model_a));
  auto sess_b = session_of(std::move(model_b));

  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->publish("m", sess_a, 0);
  serve::ServerConfig scfg;
  scfg.workers = 4;
  scfg.max_batch = 4;
  scfg.queue_capacity = 32;
  scfg.default_model = "m";
  serve::InferenceServer server(registry, scfg);

  constexpr int kClients = 4;
  constexpr int kPerClient = 24;
  constexpr int kPublishes = 8;
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::future<serve::InferResult>> futs;
      std::vector<int64_t> rows;
      for (int r = 0; r < kPerClient; ++r) {
        const int64_t i = (c + r) % kSamples;
        futs.push_back(server.submit(sample_of(x, i)));  // blocking: nothing shed
        rows.push_back(i);
      }
      for (size_t k = 0; k < futs.size(); ++k) {
        serve::InferResult res = futs[k].get();
        if (res.status != serve::RequestStatus::kOk ||
            (!row_equals(want_a, rows[k], res.output) &&
             !row_equals(want_b, rows[k], res.output))) {
          ++bad;
        }
      }
    });
  }
  std::thread publisher([&] {
    for (int i = 0; i < kPublishes; ++i) {
      registry->publish("m", (i % 2 == 0) ? sess_b : sess_a, /*warm_batch=*/4);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  for (auto& t : clients) t.join();
  publisher.join();

  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(registry->version("m"), static_cast<uint64_t>(kPublishes + 1));
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kClients * kPerClient));
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.errored, 0u);
  EXPECT_EQ(stats.unknown_model, 0u);
}

TEST(FleetHotSwapTest, DisplacedSessionDrainsByRefcount) {
  const models::BuildConfig cfg = small_cfg();
  auto sess_a = session_of(models::make_model("tiny", cfg));
  auto sess_b = session_of(make_pruned_tiny(cfg));
  const std::weak_ptr<const serve::InferenceSession> weak_a = sess_a;

  // Registry level, deterministic: a find() snapshot is the drain token.
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->publish("m", sess_a, 0);
  std::shared_ptr<const serve::InferenceSession> in_flight = registry->find("m");
  auto displaced = registry->publish("m", sess_b, 0);
  EXPECT_EQ(displaced.get(), sess_a.get());
  sess_a.reset();
  displaced.reset();
  // The swap is live, yet the in-flight snapshot still pins the old
  // session...
  EXPECT_EQ(registry->find("m").get(), sess_b.get());
  EXPECT_FALSE(weak_a.expired());
  // ...and releasing the last holder is what destroys it.
  in_flight.reset();
  EXPECT_TRUE(weak_a.expired());

  // Server level: requests snapshot their session at submit time, so
  // after shutdown() drains them no worker holds the old session either.
  auto sess_c = session_of(models::make_model("tiny", cfg));
  const std::weak_ptr<const serve::InferenceSession> weak_c = sess_c;
  registry->publish("m", sess_c, 0);
  sess_c.reset();
  serve::ServerConfig scfg;
  scfg.workers = 2;
  scfg.default_model = "m";
  serve::InferenceServer server(registry, scfg);
  const Shape& in = sess_b->input_shape();
  std::vector<std::future<serve::InferResult>> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(server.submit(random_batch(in, 1, 7).reshape(in)));
  registry->publish("m", sess_b, 0);  // displaces sess_c while requests may be in flight
  for (auto& f : futs) EXPECT_EQ(f.get().status, serve::RequestStatus::kOk);
  server.shutdown();
  EXPECT_TRUE(weak_c.expired());
}

// TSan lane target: publish, route and shutdown racing freely. The only
// assertion on outcomes is the allowed-status set — the point is that
// the race itself is clean under TSan and nothing errors.
TEST(FleetStressTest, RacingPublishRouteShutdown) {
  const models::BuildConfig cfg = small_cfg();
  auto sess_a = session_of(models::make_model("tiny", cfg));
  auto sess_b = session_of(make_pruned_tiny(cfg));
  auto registry = std::make_shared<serve::ModelRegistry>();
  registry->publish("m", sess_a, 0);

  serve::ServerConfig scfg;
  scfg.workers = 2;
  scfg.max_batch = 4;
  scfg.queue_capacity = 16;
  scfg.default_model = "m";
  serve::InferenceServer server(registry, scfg);
  const Shape& in = sess_a->input_shape();
  const Tensor x = random_batch(in, 4, 53);

  std::atomic<int> disallowed{0};
  constexpr int kClients = 3;
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<std::future<serve::InferResult>> futs;
      for (int i = 0; i < 120; ++i) {
        // A sprinkle of unknown-id routes races against remove/publish.
        auto fut = server.try_submit(sample_of(x, (c + i) % 4),
                                     route_to(i % 7 == 0 ? "ghost" : "m"));
        if (fut.has_value()) futs.push_back(std::move(*fut));
      }
      for (auto& f : futs) {
        const serve::RequestStatus s = f.get().status;
        if (s != serve::RequestStatus::kOk && s != serve::RequestStatus::kUnknownModel &&
            s != serve::RequestStatus::kShutdown) {
          ++disallowed;
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 60; ++i) {
      if (i % 10 == 9) {
        registry->remove("m");  // routes briefly see kUnknownModel
      }
      registry->publish("m", (i % 2 == 0) ? sess_b : sess_a, 0);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.shutdown();  // races the still-running clients and publisher
  for (auto& t : threads) t.join();

  EXPECT_EQ(disallowed.load(), 0);
  EXPECT_EQ(server.stats().errored, 0u);
}

}  // namespace
}  // namespace capr
