#include <gtest/gtest.h>

#include <set>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "test_util.h"

namespace capr::data {
namespace {

Dataset tiny_dataset() {
  Tensor images({6, 1, 2, 2});
  for (int64_t i = 0; i < images.numel(); ++i) images[i] = static_cast<float>(i);
  return Dataset(std::move(images), {0, 1, 2, 0, 1, 2}, 3);
}

TEST(DatasetTest, Validation) {
  EXPECT_THROW(Dataset(Tensor({2, 3}), {0, 1}, 2), std::invalid_argument);  // not NCHW
  EXPECT_THROW(Dataset(Tensor({2, 1, 2, 2}), {0}, 2), std::invalid_argument);
  EXPECT_THROW(Dataset(Tensor({2, 1, 2, 2}), {0, 5}, 2), std::out_of_range);
  EXPECT_THROW(Dataset(Tensor({2, 1, 2, 2}), {0, 1}, 0), std::invalid_argument);
}

TEST(DatasetTest, GatherCopiesRows) {
  const Dataset d = tiny_dataset();
  const Batch b = d.gather({2, 0});
  EXPECT_EQ(b.size(), 2);
  EXPECT_EQ(b.labels, (std::vector<int64_t>{2, 0}));
  EXPECT_FLOAT_EQ(b.images[0], 8.0f);  // row 2 starts at flat 8
  EXPECT_FLOAT_EQ(b.images[4], 0.0f);  // row 0
  EXPECT_THROW(d.gather({6}), std::out_of_range);
}

TEST(DatasetTest, SliceBounds) {
  const Dataset d = tiny_dataset();
  EXPECT_EQ(d.slice(4, 2).size(), 2);
  EXPECT_THROW(d.slice(5, 2), std::out_of_range);
}

TEST(DatasetTest, ClassIndexAndSampling) {
  const Dataset d = tiny_dataset();
  EXPECT_EQ(d.indices_of_class(1), (std::vector<int64_t>{1, 4}));
  Rng rng(1);
  const Batch b = d.sample_class(1, 5, rng);
  EXPECT_EQ(b.size(), 2);  // only two available
  for (int64_t lbl : b.labels) EXPECT_EQ(lbl, 1);
  EXPECT_THROW(d.sample_class(2, 0, rng), std::invalid_argument);
}

TEST(SyntheticTest, DeterministicGeneration) {
  SyntheticCifarConfig cfg;
  cfg.num_classes = 4;
  cfg.train_per_class = 3;
  cfg.test_per_class = 2;
  cfg.image_size = 8;
  const SyntheticCifar a = make_synthetic_cifar(cfg);
  const SyntheticCifar b = make_synthetic_cifar(cfg);
  EXPECT_TRUE(a.train.images().allclose(b.train.images(), 0.0f));
  EXPECT_TRUE(a.test.images().allclose(b.test.images(), 0.0f));
  cfg.seed = 43;
  const SyntheticCifar c = make_synthetic_cifar(cfg);
  EXPECT_FALSE(a.train.images().allclose(c.train.images(), 1e-3f));
}

TEST(SyntheticTest, ShapesAndBalance) {
  SyntheticCifarConfig cfg;
  cfg.num_classes = 5;
  cfg.train_per_class = 4;
  cfg.test_per_class = 2;
  cfg.image_size = 8;
  const SyntheticCifar s = make_synthetic_cifar(cfg);
  EXPECT_EQ(s.train.size(), 20);
  EXPECT_EQ(s.test.size(), 10);
  EXPECT_EQ(s.train.image_shape(), (Shape{3, 8, 8}));
  for (int64_t cls = 0; cls < 5; ++cls) {
    EXPECT_EQ(static_cast<int64_t>(s.train.indices_of_class(cls).size()), 4);
  }
}

TEST(SyntheticTest, ClassesAreStatisticallyDistinct) {
  SyntheticCifarConfig cfg;
  cfg.num_classes = 3;
  cfg.train_per_class = 8;
  cfg.image_size = 8;
  cfg.noise_stddev = 0.05f;
  const SyntheticCifar s = make_synthetic_cifar(cfg);
  // Mean intra-class distance should be well below inter-class distance.
  const auto mean_image = [&](int64_t cls) {
    const auto idx = s.train.indices_of_class(cls);
    const Batch b = s.train.gather(idx);
    Tensor m({3 * 8 * 8});
    for (int64_t i = 0; i < b.size(); ++i) {
      for (int64_t k = 0; k < m.numel(); ++k) m[k] += b.images[i * m.numel() + k];
    }
    for (int64_t k = 0; k < m.numel(); ++k) m[k] /= static_cast<float>(b.size());
    return m;
  };
  const Tensor m0 = mean_image(0), m1 = mean_image(1), m2 = mean_image(2);
  const auto dist = [](const Tensor& a, const Tensor& b) {
    double acc = 0.0;
    for (int64_t i = 0; i < a.numel(); ++i) {
      const double d = a[i] - b[i];
      acc += d * d;
    }
    return acc;
  };
  EXPECT_GT(dist(m0, m1), 1.0);
  EXPECT_GT(dist(m0, m2), 1.0);
  EXPECT_GT(dist(m1, m2), 1.0);
}

TEST(SyntheticTest, ConfigValidation) {
  SyntheticCifarConfig cfg;
  cfg.num_classes = 1;
  EXPECT_THROW(make_synthetic_cifar(cfg), std::invalid_argument);
  cfg = SyntheticCifarConfig{};
  cfg.image_size = 2;
  EXPECT_THROW(make_synthetic_cifar(cfg), std::invalid_argument);
}

TEST(SyntheticTest, Presets) {
  EXPECT_EQ(synth_cifar10_config().num_classes, 10);
  EXPECT_EQ(synth_cifar100_config().num_classes, 100);
}

TEST(DataLoaderTest, CoversEpochExactlyOnce) {
  const Dataset d = tiny_dataset();
  DataLoader loader(d, {.batch_size = 4, .shuffle = true, .augment = false}, Rng(3));
  std::multiset<float> seen;
  Batch b;
  int64_t total = 0;
  while (loader.next(b)) {
    total += b.size();
    for (int64_t i = 0; i < b.size(); ++i) seen.insert(b.images[i * 4]);  // first pixel ids row
  }
  EXPECT_EQ(total, 6);
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(loader.batches_per_epoch(), 2);
  // Next epoch works after reset.
  loader.reset();
  EXPECT_TRUE(loader.next(b));
}

TEST(DataLoaderTest, AugmentPreservesShapeAndLabels) {
  SyntheticCifarConfig cfg;
  cfg.num_classes = 2;
  cfg.train_per_class = 4;
  cfg.image_size = 8;
  const SyntheticCifar s = make_synthetic_cifar(cfg);
  DataLoader loader(s.train, {.batch_size = 8, .shuffle = false, .augment = true}, Rng(5));
  Batch b;
  ASSERT_TRUE(loader.next(b));
  EXPECT_EQ(b.images.shape(), (Shape{8, 3, 8, 8}));
  EXPECT_EQ(b.labels.size(), 8u);
}

TEST(DataLoaderTest, RejectsBadBatchSize) {
  const Dataset d = tiny_dataset();
  EXPECT_THROW(DataLoader(d, {.batch_size = 0}, Rng(1)), std::invalid_argument);
}

}  // namespace
}  // namespace capr::data
