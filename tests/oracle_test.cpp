// Differential testing of the optimized kernels against the naive oracle
// (src/verify/oracle.h) over randomized shape sweeps. Every sweep runs
// >= 50 seeded configurations; a failure message names the kernel, the
// exact configuration, and the worst element, so it reproduces directly.
#include "verify/oracle.h"

#include <gtest/gtest.h>

#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "test_util.h"
#include "verify/shape_sweep.h"

namespace capr::verify {
namespace {

using testing::expect_allclose;

// ---- the oracle itself is hand-checked on tiny known cases -----------------

TEST(OracleSelfTest, RefMatmulKnownProduct) {
  const Tensor a = Tensor::from({2, 2}, {1, 2, 3, 4});
  const Tensor b = Tensor::from({2, 2}, {5, 6, 7, 8});
  EXPECT_TRUE(expect_allclose(ref_matmul(a, b), Tensor::from({2, 2}, {19, 22, 43, 50})));
}

TEST(OracleSelfTest, RefConvKnownValues) {
  // 1x1x2x2 input, one 2x2 filter, no padding: single output = dot + bias.
  const Tensor x = Tensor::from({1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor w = Tensor::from({1, 1, 2, 2}, {10, 20, 30, 40});
  const Tensor b = Tensor::from({5});
  const Tensor y = ref_conv2d_forward(x, w, b, 1, 0);
  ASSERT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 10 + 40 + 90 + 160 + 5);
}

TEST(OracleSelfTest, RefIm2colIdentityKernel) {
  // k=1, stride=1, pad=0: the column matrix is the image itself.
  ConvGeom g;
  g.in_channels = 2;
  g.in_h = 3;
  g.in_w = 3;
  g.kernel_h = g.kernel_w = 1;
  const Tensor im = testing::random_tensor({2, 3, 3}, 5);
  const Tensor col = ref_im2col(im, g);
  EXPECT_TRUE(expect_allclose(col, im.reshape({2, 9})));
}

// ---- randomized differential sweeps ----------------------------------------

TEST(OracleSweepTest, GemmFamilyMatchesReference) {
  SweepOptions opts;
  opts.configs = 60;
  const SweepResult r = sweep_gemm(opts);
  EXPECT_GE(r.configs_run, 50);
  EXPECT_TRUE(r.ok()) << r.first_failure;
}

TEST(OracleSweepTest, Im2colCol2imMatchReferenceAndAreAdjoint) {
  SweepOptions opts;
  opts.configs = 60;
  const SweepResult r = sweep_im2col(opts);
  EXPECT_GE(r.configs_run, 50);
  EXPECT_TRUE(r.ok()) << r.first_failure;
}

TEST(OracleSweepTest, Conv2dForwardBackwardMatchDirectConvolution) {
  SweepOptions opts;
  opts.configs = 55;
  const SweepResult r = sweep_conv2d(opts);
  EXPECT_GE(r.configs_run, 50);
  EXPECT_TRUE(r.ok()) << r.first_failure;
}

TEST(OracleSweepTest, DifferentSeedsCoverDifferentConfigs) {
  // The sweep must actually randomize: two seeds may not produce the
  // same pass/fail trace trivially — sanity-check by running both.
  SweepOptions a, b;
  a.configs = b.configs = 50;
  a.seed = 1;
  b.seed = 2;
  EXPECT_TRUE(sweep_gemm(a).ok());
  EXPECT_TRUE(sweep_gemm(b).ok());
}

}  // namespace
}  // namespace capr::verify
