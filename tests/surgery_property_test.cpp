// Property-style sweeps: random pruning sequences on every architecture
// must preserve the structural invariants the rest of the system relies
// on (forward legality, metadata consistency, cost-model agreement).
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/surgeon.h"
#include "flops/flops.h"
#include "models/builders.h"
#include "tensor/rng.h"
#include "test_util.h"

namespace capr::core {
namespace {

class RandomSurgerySweep
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(RandomSurgerySweep, InvariantsHoldUnderRandomPruning) {
  const auto& [arch, seed] = GetParam();
  models::BuildConfig cfg;
  cfg.num_classes = 5;
  cfg.input_size = 8;
  cfg.width_mult = 0.5f;
  nn::Model m = models::make_model(arch, cfg);
  Rng rng(seed);
  const Tensor x = capr::testing::random_tensor({2, 3, 8, 8}, seed);

  for (int round = 0; round < 3; ++round) {
    // Pick a random unit and remove a random strict subset of filters
    // (respecting a floor of 2).
    const auto u = static_cast<size_t>(rng.uniform_int(
        static_cast<int64_t>(m.units.size())));
    const int64_t f = m.units[u].conv->out_channels();
    if (f <= 2) continue;
    const int64_t remove_n = 1 + rng.uniform_int(std::min<int64_t>(f - 2, 3));
    std::vector<int64_t> filters;
    while (static_cast<int64_t>(filters.size()) < remove_n) {
      const int64_t cand = rng.uniform_int(f);
      if (std::find(filters.begin(), filters.end(), cand) == filters.end()) {
        filters.push_back(cand);
      }
    }
    remove_filters(m, u, filters);

    // Invariant 1: forward stays legal and finite.
    const Tensor logits = m.forward(x, false);
    ASSERT_EQ(logits.shape(), (Shape{2, 5}));
    for (int64_t i = 0; i < logits.numel(); ++i) ASSERT_FALSE(std::isnan(logits[i]));

    // Invariant 2: metadata still consistent.
    for (const nn::PrunableUnit& unit : m.units) {
      if (unit.bn != nullptr) {
        ASSERT_EQ(unit.bn->channels(), unit.conv->out_channels());
      }
      for (const nn::ConsumerRef& c : unit.consumers) {
        if (c.conv != nullptr) {
          ASSERT_EQ(c.conv->in_channels(), unit.conv->out_channels());
        } else {
          ASSERT_EQ(c.linear->in_features(), unit.conv->out_channels() * c.spatial);
        }
      }
    }

    // Invariant 3: cost model agrees with the live parameter count.
    ASSERT_EQ(flops::count(m).total_params, m.parameter_count());

    // Invariant 4: backward still runs with matching grad shapes.
    m.forward(x, true);
    m.backward(Tensor({2, 5}, 0.1f));
    for (nn::Param* p : m.params()) {
      ASSERT_EQ(p->value.shape(), p->grad.shape());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ArchSeeds, RandomSurgerySweep,
    ::testing::Combine(::testing::Values("tiny", "vgg16", "vgg19", "resnet20"),
                       ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace capr::core
