#include "report/csv.h"

#include <gtest/gtest.h>

#include <fstream>

namespace capr::report {
namespace {

TEST(CsvEscapeTest, PassesPlainCellsThrough) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape("93.6%"), "93.6%");
}

TEST(CsvEscapeTest, QuotesSpecials) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriterTest, RendersHeaderAndRows) {
  CsvWriter csv({"method", "accuracy"});
  csv.add_row({"L1", "0.93"});
  csv.add_row({"Class-Aware", "0.94"});
  EXPECT_EQ(csv.render(), "method,accuracy\nL1,0.93\nClass-Aware,0.94\n");
  EXPECT_EQ(csv.rows(), 2u);
}

TEST(CsvWriterTest, ValidatesShapes) {
  EXPECT_THROW(CsvWriter({}), std::invalid_argument);
  CsvWriter csv({"a", "b"});
  EXPECT_THROW(csv.add_row({"only"}), std::invalid_argument);
}

TEST(CsvWriterTest, WritesFile) {
  CsvWriter csv({"x"});
  csv.add_row({"1"});
  const std::string path = ::testing::TempDir() + "capr_test.csv";
  csv.write(path);
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)), {});
  EXPECT_EQ(contents, "x\n1\n");
  EXPECT_THROW(csv.write("/nonexistent/dir/x.csv"), std::runtime_error);
}

}  // namespace
}  // namespace capr::report
