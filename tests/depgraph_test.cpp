// The automatic channel-dependency analysis must reproduce the builders'
// hand annotations on every architecture, and refuse unsafe graphs.
#include "nn/depgraph.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "models/builders.h"
#include "nn/dropout.h"
#include "nn/pooling.h"

namespace capr::nn {
namespace {

models::BuildConfig tiny_cfg() {
  models::BuildConfig cfg;
  cfg.num_classes = 4;
  cfg.input_size = 8;
  cfg.width_mult = 0.25f;
  return cfg;
}

class DeriveSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(DeriveSweep, MatchesBuilderAnnotations) {
  Model m = models::make_model(GetParam(), tiny_cfg());
  const std::vector<PrunableUnit> derived = derive_units(*m.net, m.input_shape);
  ASSERT_EQ(derived.size(), m.units.size());
  for (size_t u = 0; u < derived.size(); ++u) {
    EXPECT_EQ(derived[u].conv, m.units[u].conv) << "unit " << u;
    EXPECT_EQ(derived[u].bn, m.units[u].bn) << "unit " << u;
    EXPECT_EQ(derived[u].score_point, m.units[u].score_point) << "unit " << u;
    ASSERT_EQ(derived[u].consumers.size(), m.units[u].consumers.size()) << "unit " << u;
    for (size_t c = 0; c < derived[u].consumers.size(); ++c) {
      EXPECT_EQ(derived[u].consumers[c].conv, m.units[u].consumers[c].conv);
      EXPECT_EQ(derived[u].consumers[c].linear, m.units[u].consumers[c].linear);
      EXPECT_EQ(derived[u].consumers[c].spatial, m.units[u].consumers[c].spatial);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Archs, DeriveSweep,
                         ::testing::Values("tiny", "vgg11", "vgg13", "vgg16", "vgg19", "resnet20",
                                           "resnet32", "resnet44", "resnet56"));

TEST(DeriveTest, AnnotateModelReplacesUnits) {
  Model m = models::make_vgg16(tiny_cfg());
  m.units.clear();
  annotate_model(m);
  EXPECT_EQ(m.units.size(), 13u);
}

TEST(DeriveTest, FlattenLinearGetsSpatialFactor) {
  // conv -> relu -> flatten -> linear: the linear consumes channel blocks
  // of H*W features.
  Model m;
  m.input_shape = {1, 4, 4};
  m.num_classes = 2;
  m.net = std::make_unique<Sequential>();
  auto* conv = m.net->add(std::make_unique<Conv2d>(1, 3, 3, 1, 1, false));
  conv->set_name("c");
  m.net->add(std::make_unique<ReLU>());
  m.net->add(std::make_unique<Flatten>());
  auto* fc = m.net->add(std::make_unique<Linear>(3 * 16, 2));
  fc->set_name("fc");
  const auto units = derive_units(*m.net, m.input_shape);
  ASSERT_EQ(units.size(), 1u);
  ASSERT_EQ(units[0].consumers.size(), 1u);
  EXPECT_EQ(units[0].consumers[0].linear, fc);
  EXPECT_EQ(units[0].consumers[0].spatial, 16);
}

TEST(DeriveTest, TrailingConvIsNotPrunable) {
  // A conv with no downstream consumer cannot be pruned safely.
  Model m;
  m.input_shape = {1, 4, 4};
  m.net = std::make_unique<Sequential>();
  m.net->add(std::make_unique<Conv2d>(1, 2, 3, 1, 1, false));
  m.net->add(std::make_unique<ReLU>());
  EXPECT_TRUE(derive_units(*m.net, m.input_shape).empty());
}

TEST(DeriveTest, DropoutAndLeakyReluAreTransparent) {
  Model m;
  m.input_shape = {1, 4, 4};
  m.net = std::make_unique<Sequential>();
  auto* c1 = m.net->add(std::make_unique<Conv2d>(1, 2, 3, 1, 1, false));
  m.net->add(std::make_unique<ReLU>());
  m.net->add(std::make_unique<Dropout>(0.5f));
  m.net->add(std::make_unique<LeakyReLU>(0.1f));
  auto* c2 = m.net->add(std::make_unique<Conv2d>(2, 2, 3, 1, 1, false));
  m.net->add(std::make_unique<ReLU>());
  const auto units = derive_units(*m.net, m.input_shape);
  ASSERT_EQ(units.size(), 1u);
  EXPECT_EQ(units[0].conv, c1);
  EXPECT_EQ(units[0].consumers[0].conv, c2);
}

TEST(DeriveTest, LinearWithoutFlattenRefused) {
  Model m;
  m.input_shape = {1, 4, 4};
  m.net = std::make_unique<Sequential>();
  m.net->add(std::make_unique<Conv2d>(1, 2, 3, 1, 1, false));
  m.net->add(std::make_unique<Linear>(32, 2));
  EXPECT_THROW(derive_units(*m.net, m.input_shape), std::logic_error);
}

/// A layer kind the dependency analysis has never heard of.
class UnsupportedLayer final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool) override { return x; }
  Tensor backward(const Tensor& g) override { return g; }
  std::string kind() const override { return "mystery"; }
  Shape output_shape(const Shape& in) const override { return in; }
};

std::string derive_error(Model& m) {
  try {
    derive_units(*m.net, m.input_shape);
  } catch (const std::logic_error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected std::logic_error";
  return {};
}

TEST(DeriveErrorTest, UnknownLayerKindNamesFlattenedIndex) {
  Model m;
  m.input_shape = {1, 4, 4};
  m.net = std::make_unique<Sequential>();
  m.net->add(std::make_unique<Conv2d>(1, 2, 3, 1, 1, false));
  m.net->add(std::make_unique<ReLU>());
  m.net->add(std::make_unique<UnsupportedLayer>());
  const std::string msg = derive_error(m);
  EXPECT_NE(msg.find("layer 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unsupported layer kind 'mystery'"), std::string::npos) << msg;
}

TEST(DeriveErrorTest, NestedContainersAreTransparentToNumbering) {
  // The offending layer sits behind a nested Sequential; the diagnostic
  // must still count flattened non-composite positions.
  Model m;
  m.input_shape = {1, 4, 4};
  m.net = std::make_unique<Sequential>();
  auto stage = std::make_unique<Sequential>();
  stage->add(std::make_unique<Conv2d>(1, 2, 3, 1, 1, false));
  stage->add(std::make_unique<ReLU>());
  m.net->add(std::move(stage));
  m.net->add(std::make_unique<UnsupportedLayer>());
  const std::string msg = derive_error(m);
  EXPECT_NE(msg.find("layer 2"), std::string::npos) << msg;
}

TEST(DeriveErrorTest, LinearBeforeAnyProducerNamesLayerZero) {
  Model m;
  m.input_shape = {1, 4, 4};
  m.net = std::make_unique<Sequential>();
  m.net->add(std::make_unique<Linear>(32, 2));
  const std::string msg = derive_error(m);
  EXPECT_NE(msg.find("layer 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("without Flatten"), std::string::npos) << msg;
}

TEST(DeriveErrorTest, ConvChannelMismatchReportsBothSides) {
  Model m;
  m.input_shape = {1, 4, 4};
  m.net = std::make_unique<Sequential>();
  m.net->add(std::make_unique<Conv2d>(1, 2, 3, 1, 1, false));
  m.net->add(std::make_unique<ReLU>());
  m.net->add(std::make_unique<Conv2d>(3, 2, 3, 1, 1, false))->set_name("bad");
  const std::string msg = derive_error(m);
  EXPECT_NE(msg.find("layer 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'bad'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("expects C_in=3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("producer yields"), std::string::npos) << msg;
}

TEST(DeriveErrorTest, DanglingResidualBlockIsRefused) {
  // The block's shortcut add would be fed the wrong channel count.
  Model m;
  m.input_shape = {1, 4, 4};
  m.net = std::make_unique<Sequential>();
  m.net->add(std::make_unique<Conv2d>(1, 2, 3, 1, 1, false));
  m.net->add(std::make_unique<BasicBlock>(8, 8, 1));
  const std::string msg = derive_error(m);
  EXPECT_NE(msg.find("layer 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("residual block expects 8 input channels"), std::string::npos) << msg;
}

TEST(DeriveErrorTest, LinearInFeaturesMismatchAfterCollapse) {
  Model m;
  m.input_shape = {1, 4, 4};
  m.net = std::make_unique<Sequential>();
  m.net->add(std::make_unique<Conv2d>(1, 2, 3, 1, 1, false));
  m.net->add(std::make_unique<ReLU>());
  m.net->add(std::make_unique<GlobalAvgPool>());
  m.net->add(std::make_unique<Linear>(5, 2));
  const std::string msg = derive_error(m);
  EXPECT_NE(msg.find("layer 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("expects in_features=5"), std::string::npos) << msg;
}

TEST(DeriveTest, DerivedUnitsSurviveSurgeryRoundTrip) {
  // Derived units must be as operable as builder units: prune through
  // them and keep the forward legal.
  Model m = models::make_vgg16(tiny_cfg());
  annotate_model(m);
  m.units[3].conv->remove_out_channels({0});
  if (m.units[3].bn != nullptr) m.units[3].bn->remove_channels({0});
  for (auto& c : m.units[3].consumers) {
    if (c.conv != nullptr) c.conv->remove_in_channels({0});
  }
  const Tensor x({2, 3, 8, 8}, 0.5f);
  EXPECT_NO_THROW(m.forward(x, false));
}

}  // namespace
}  // namespace capr::nn
