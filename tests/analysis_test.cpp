// Static analyzer: shape inference, prune-plan certification, and
// checked-mode fail-fast. Every diagnostic code has at least one test
// that produces it, and every builder architecture must certify clean.
#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "analysis/checked.h"
#include "core/pruner.h"
#include "data/synthetic.h"
#include "models/builders.h"
#include "nn/depgraph.h"
#include "nn/trainer.h"

namespace capr::analysis {
namespace {

models::BuildConfig small_cfg(int64_t classes = 4) {
  models::BuildConfig cfg;
  cfg.num_classes = classes;
  cfg.input_size = 8;
  cfg.width_mult = 0.25f;
  return cfg;
}

nn::Model wide_tiny() {
  models::BuildConfig cfg = small_cfg();
  cfg.width_mult = 1.0f;  // conv0: 32 filters, conv1: 64 filters
  return models::make_tiny_cnn(cfg);
}

nn::Conv2d* find_conv(nn::Model& m, const std::string& name) {
  nn::Conv2d* found = nullptr;
  m.net->visit([&](nn::Layer& l) {
    if (auto* c = dynamic_cast<nn::Conv2d*>(&l); c != nullptr && l.name() == name) found = c;
  });
  return found;
}

/// A layer kind the analyzer has never heard of.
class MysteryLayer final : public nn::Layer {
 public:
  Tensor forward(const Tensor& x, bool) override { return x; }
  Tensor backward(const Tensor& g) override { return g; }
  std::string kind() const override { return "mystery"; }
  Shape output_shape(const Shape& in) const override { return in; }
};

// ---------------------------------------------------------------------------
// Model certification across every architecture.

class ArchSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(ArchSweep, BuilderModelCertifiesClean) {
  nn::Model m = models::make_model(GetParam(), small_cfg());
  const Report report = analyze_model(m);
  EXPECT_TRUE(report.ok()) << report.to_string();
  const ShapeTrace trace = infer_shapes(m);
  ASSERT_TRUE(trace.report.ok());
  EXPECT_EQ(trace.output, (Shape{m.num_classes}));
  EXPECT_GT(trace.steps.size(), 3u);
}

TEST_P(ArchSweep, DerivedUnitsCertifyLegal) {
  nn::Model m = models::make_model(GetParam(), small_cfg());
  nn::annotate_model(m);
  const Report report = analyze_model(m);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_P(ArchSweep, StrategySelectionCertifiesUnderItsOwnConfig) {
  // A selection produced by the strategy must verify against the exact
  // config that produced it (scores -> strategy -> analyzer closure).
  nn::Model m = models::make_model(GetParam(), small_cfg());
  core::ImportanceResult scores;
  scores.num_classes = m.num_classes;
  for (size_t u = 0; u < m.units.size(); ++u) {
    core::UnitScores us;
    us.unit_index = u;
    us.unit_name = m.units[u].name;
    const auto f = static_cast<size_t>(m.units[u].conv->out_channels());
    for (size_t i = 0; i < f; ++i) {
      us.total.push_back(static_cast<float>((i * 7 + u * 3) % 11));
    }
    scores.units.push_back(std::move(us));
  }
  core::PruneStrategyConfig cfg;  // paper defaults: kBoth, 10% cap
  const auto selection = core::select_filters(scores, cfg);
  VerifyOptions opts;
  opts.strategy = &cfg;
  opts.scores = &scores;
  const Report report = analyze_plan(m, selection, opts);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

INSTANTIATE_TEST_SUITE_P(Archs, ArchSweep,
                         ::testing::Values("tiny", "vgg11", "vgg13", "vgg16", "vgg19",
                                           "resnet20", "resnet32", "resnet44", "resnet56"));

// ---------------------------------------------------------------------------
// Shape inference diagnostics.

TEST(ShapeInferenceTest, ReportsFirstIllFormedEdgeWithChannelCounts) {
  nn::Model m;
  m.input_shape = {3, 8, 8};
  m.net = std::make_unique<nn::Sequential>();
  m.net->add(std::make_unique<nn::Conv2d>(3, 4, 3, 1, 1, false))->set_name("a");
  m.net->add(std::make_unique<nn::ReLU>());
  m.net->add(std::make_unique<nn::Conv2d>(8, 4, 3, 1, 1, false))->set_name("b");
  m.net->add(std::make_unique<nn::ReLU>());

  const ShapeTrace trace = infer_shapes(m);
  ASSERT_FALSE(trace.report.ok());
  EXPECT_TRUE(trace.report.has(DiagCode::kShapeMismatch));
  ASSERT_EQ(trace.report.diagnostics().size(), 1u);
  const Diagnostic& d = trace.report.diagnostics()[0];
  EXPECT_NE(d.layer.find("2"), std::string::npos) << d.format();
  EXPECT_NE(d.message.find("expects C_in=8, producer yields 4"), std::string::npos)
      << d.format();
  // The walk stops at the first bad edge: only conv 'a' and the ReLU
  // were certified.
  EXPECT_EQ(trace.steps.size(), 2u);
}

TEST(ShapeInferenceTest, LinearOnSpatialOutputIsRejected) {
  nn::Model m;
  m.input_shape = {1, 4, 4};
  m.net = std::make_unique<nn::Sequential>();
  m.net->add(std::make_unique<nn::Conv2d>(1, 2, 3, 1, 1, false));
  m.net->add(std::make_unique<nn::Linear>(32, 2));
  const ShapeTrace trace = infer_shapes(m);
  ASSERT_FALSE(trace.report.ok());
  EXPECT_TRUE(trace.report.has(DiagCode::kShapeMismatch));
  EXPECT_NE(trace.report.to_string().find("without Flatten"), std::string::npos);
}

TEST(ShapeInferenceTest, UnknownLayerKindIsRejected) {
  nn::Model m;
  m.input_shape = {1, 4, 4};
  m.net = std::make_unique<nn::Sequential>();
  m.net->add(std::make_unique<MysteryLayer>());
  const Report report = analyze_model(m);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(DiagCode::kUnknownLayer));
  EXPECT_NE(report.to_string().find("mystery"), std::string::npos);
}

TEST(ShapeInferenceTest, ResidualAddWithUnequalBranchesIsRejected) {
  // Sabotage an identity-shortcut block so the main path loses a channel
  // in a way that stays internally consistent until the add.
  auto blk = std::make_unique<nn::BasicBlock>(4, 4, 1);
  blk->conv2().remove_out_channels({3});
  blk->bn2().remove_channels({3});
  nn::Model m;
  m.input_shape = {3, 8, 8};
  m.net = std::make_unique<nn::Sequential>();
  m.net->add(std::make_unique<nn::Conv2d>(3, 4, 3, 1, 1, false));
  m.net->add(std::move(blk));
  const ShapeTrace trace = infer_shapes(m);
  ASSERT_FALSE(trace.report.ok());
  EXPECT_TRUE(trace.report.has(DiagCode::kResidualShape));
  EXPECT_NE(trace.report.to_string().find("residual add"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Unit metadata certification.

TEST(UnitCertificationTest, InconsistentConsumerIsFlagged) {
  nn::Model m = wide_tiny();
  // Point unit 0's consumer at a conv whose in_channels cannot match.
  m.units[0].consumers[0].conv = m.units[0].conv;
  const Report report = analyze_model(m);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(DiagCode::kCouplingBroken));
}

TEST(UnitCertificationTest, ResidualCoupledProducerIsFlagged) {
  nn::Model m = models::make_resnet20(small_cfg());
  nn::Conv2d* stem = find_conv(m, "stem.conv");
  ASSERT_NE(stem, nullptr);
  // The stem conv feeds the first block's identity shortcut; no unit may
  // claim it as a prunable producer.
  m.units[0].conv = stem;
  const Report report = verify_units(m);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(DiagCode::kResidualCoupled));
}

// ---------------------------------------------------------------------------
// Plan certification: one test per illegal-plan class.

TEST(PlanVerifierTest, UnitIndexOutOfRange) {
  nn::Model m = wide_tiny();
  const Report report = verify_plan(m, {{99, {0}}});
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(DiagCode::kUnitOutOfRange));
}

TEST(PlanVerifierTest, FilterIndexOutOfRange) {
  nn::Model m = wide_tiny();
  const int64_t live = m.units[0].conv->out_channels();
  Report report = verify_plan(m, {{0, {live}}});
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(DiagCode::kIndexOutOfRange));
  EXPECT_NE(report.to_string().find(std::to_string(live) + " live filters"),
            std::string::npos);
  report = verify_plan(m, {{0, {-1}}});
  EXPECT_TRUE(report.has(DiagCode::kIndexOutOfRange));
}

TEST(PlanVerifierTest, DuplicateFilterIndex) {
  nn::Model m = wide_tiny();
  Report report = verify_plan(m, {{0, {1, 1}}});
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(DiagCode::kDuplicateIndex));
  // Also across two selections naming the same unit.
  report = verify_plan(m, {{0, {1}}, {0, {1}}});
  EXPECT_TRUE(report.has(DiagCode::kDuplicateIndex));
}

TEST(PlanVerifierTest, EmptiedUnit) {
  nn::Model m = wide_tiny();
  std::vector<int64_t> all;
  for (int64_t f = 0; f < m.units[0].conv->out_channels(); ++f) all.push_back(f);
  const Report report = verify_plan(m, {{0, all}});
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(DiagCode::kEmptiedUnit));
}

TEST(PlanVerifierTest, ResidualCoupledUnitInPlan) {
  nn::Model m = models::make_resnet20(small_cfg());
  nn::Conv2d* stem = find_conv(m, "stem.conv");
  ASSERT_NE(stem, nullptr);
  m.units[0].conv = stem;
  const Report report = verify_plan(m, {{0, {0}}});
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(DiagCode::kResidualCoupled));
}

TEST(PlanVerifierTest, OverGlobalCap) {
  nn::Model m = wide_tiny();  // 96 filters total
  core::PruneStrategyConfig cfg;
  cfg.max_fraction_per_iter = 0.10f;  // cap: 9
  cfg.max_layer_fraction_per_iter = 1.0f;
  VerifyOptions opts;
  opts.strategy = &cfg;
  std::vector<int64_t> sixteen;
  for (int64_t f = 0; f < 16; ++f) sixteen.push_back(f);
  const Report report = verify_plan(m, {{0, sixteen}}, opts);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(DiagCode::kOverCap));
  EXPECT_FALSE(report.has(DiagCode::kLayerOverCap));
}

TEST(PlanVerifierTest, OverLayerCap) {
  nn::Model m = wide_tiny();
  core::PruneStrategyConfig cfg;
  cfg.max_fraction_per_iter = 1.0f;
  cfg.max_layer_fraction_per_iter = 0.5f;  // unit 0 cap: 16 of 32
  VerifyOptions opts;
  opts.strategy = &cfg;
  std::vector<int64_t> twenty;
  for (int64_t f = 0; f < 20; ++f) twenty.push_back(f);
  const Report report = verify_plan(m, {{0, twenty}}, opts);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(DiagCode::kLayerOverCap));
  EXPECT_FALSE(report.has(DiagCode::kOverCap));
}

TEST(PlanVerifierTest, BelowPerLayerFloor) {
  nn::Model m = wide_tiny();
  core::PruneStrategyConfig cfg;
  cfg.max_fraction_per_iter = 1.0f;
  cfg.max_layer_fraction_per_iter = 1.0f;
  cfg.min_filters_per_layer = 2;
  VerifyOptions opts;
  opts.strategy = &cfg;
  std::vector<int64_t> almost_all;  // leaves exactly 1 < floor 2
  for (int64_t f = 0; f < m.units[0].conv->out_channels() - 1; ++f) almost_all.push_back(f);
  const Report report = verify_plan(m, {{0, almost_all}}, opts);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(DiagCode::kBelowFloor));
  EXPECT_FALSE(report.has(DiagCode::kEmptiedUnit));
}

TEST(PlanVerifierTest, ThresholdSemanticsViolated) {
  nn::Model m = wide_tiny();
  core::ImportanceResult scores;
  scores.num_classes = 10;  // paper rule: threshold 0.3 * 10 = 3
  core::UnitScores us;
  us.unit_index = 0;
  us.total.assign(static_cast<size_t>(m.units[0].conv->out_channels()), 0.5f);
  us.total[0] = 5.0f;  // clearly above threshold
  scores.units.push_back(std::move(us));
  core::PruneStrategyConfig cfg;
  cfg.max_fraction_per_iter = 1.0f;
  cfg.max_layer_fraction_per_iter = 1.0f;
  VerifyOptions opts;
  opts.strategy = &cfg;
  opts.scores = &scores;
  const Report report = verify_plan(m, {{0, {0}}}, opts);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(DiagCode::kThresholdViolated));
  // The same filter passes in percentage mode, where no threshold applies.
  cfg.mode = core::StrategyMode::kPercentage;
  EXPECT_TRUE(verify_plan(m, {{0, {0}}}, opts).ok());
}

TEST(PlanVerifierTest, LegalPlanIsClean) {
  nn::Model m = wide_tiny();
  const Report report = verify_plan(m, {{0, {1, 3, 5}}, {1, {2}}});
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// ---------------------------------------------------------------------------
// Checked mode: fail fast before any mutation.

TEST(CheckedModeTest, ApplySelectionRejectsIllegalPlanUntouched) {
  CheckedModeGuard guard;
  nn::Model m = wide_tiny();
  const int64_t before = m.units[0].conv->out_channels();
  EXPECT_THROW(core::apply_selection(m, {{0, {1, 1}}}), AnalysisError);
  EXPECT_EQ(m.units[0].conv->out_channels(), before);
  // Without checked mode the duplicate is silently deduplicated by the
  // surgeon (legacy behavior) — the analyzer is what makes it a hard error.
}

TEST(CheckedModeTest, ApplySelectionAcceptsLegalPlan) {
  CheckedModeGuard guard;
  nn::Model m = wide_tiny();
  const int64_t before = m.units[0].conv->out_channels();
  EXPECT_EQ(core::apply_selection(m, {{0, {1, 3}}}), 2);
  EXPECT_EQ(m.units[0].conv->out_channels(), before - 2);
  const Tensor x({2, 3, 8, 8}, 0.25f);
  EXPECT_NO_THROW(m.forward(x, false));
}

TEST(CheckedModeTest, PrunerStepEnforcesStrategyCaps) {
  CheckedModeGuard guard;
  nn::Model m = wide_tiny();
  core::ClassAwarePrunerConfig cfg;
  cfg.strategy.max_fraction_per_iter = 0.10f;  // cap: 9 of 96
  cfg.strategy.max_layer_fraction_per_iter = 1.0f;
  core::ClassAwarePruner pruner(cfg);
  std::vector<int64_t> sixteen;
  for (int64_t f = 0; f < 16; ++f) sixteen.push_back(f);
  const int64_t before = m.units[0].conv->out_channels();
  EXPECT_THROW(pruner.step(m, {{0, sixteen}}), AnalysisError);
  EXPECT_EQ(m.units[0].conv->out_channels(), before);
  // A cap-respecting plan passes and is recorded in the history.
  core::PruneHistory history(m);
  EXPECT_EQ(pruner.step(m, {{0, {0, 2}}}, &history), 2);
  EXPECT_EQ(history.removed_original()[0], (std::vector<int64_t>{0, 2}));
}

TEST(CheckedModeTest, TrainFailsFastOnIllFormedModel) {
  CheckedModeGuard guard;
  nn::Model m;
  m.arch = "broken";
  m.num_classes = 2;
  m.input_shape = {3, 8, 8};
  m.net = std::make_unique<nn::Sequential>();
  m.net->add(std::make_unique<nn::Conv2d>(3, 4, 3, 1, 1, false))->set_name("a");
  m.net->add(std::make_unique<nn::Conv2d>(8, 4, 3, 1, 1, false))->set_name("b");

  data::SyntheticCifarConfig dcfg;
  dcfg.num_classes = 2;
  dcfg.train_per_class = 2;
  dcfg.test_per_class = 2;
  dcfg.image_size = 8;
  const data::SyntheticCifar dataset = data::make_synthetic_cifar(dcfg);
  nn::TrainConfig tcfg;
  tcfg.epochs = 1;
  tcfg.batch_size = 2;
  EXPECT_THROW(nn::train(m, dataset.train, tcfg), AnalysisError);
  EXPECT_THROW(nn::evaluate(m, dataset.test), AnalysisError);
}

TEST(CheckedModeTest, EvaluateAcceptsWellFormedModel) {
  CheckedModeGuard guard;
  nn::Model m = models::make_tiny_cnn(small_cfg(2));
  data::SyntheticCifarConfig dcfg;
  dcfg.num_classes = 2;
  dcfg.train_per_class = 2;
  dcfg.test_per_class = 2;
  dcfg.image_size = 8;
  const data::SyntheticCifar dataset = data::make_synthetic_cifar(dcfg);
  EXPECT_NO_THROW(nn::evaluate(m, dataset.test));
}

TEST(CheckedModeTest, GuardRestoresUncheckedBehavior) {
  {
    CheckedModeGuard guard;
    EXPECT_TRUE(checked_mode_enabled());
  }
  EXPECT_FALSE(checked_mode_enabled());
  // Back to legacy semantics: the surgeon deduplicates silently.
  nn::Model m = wide_tiny();
  EXPECT_NO_THROW(core::apply_selection(m, {{0, {1}}}));
}

}  // namespace
}  // namespace capr::analysis
