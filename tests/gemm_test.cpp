#include "tensor/gemm.h"

#include <gtest/gtest.h>

#include <tuple>

#include "test_util.h"

namespace capr {
namespace {

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
      c[i * n + j] = static_cast<float>(acc);
    }
  }
  return c;
}

TEST(GemmTest, SmallKnownProduct) {
  Tensor a = Tensor::from({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::from({2, 2}, {5, 6, 7, 8});
  EXPECT_TRUE(matmul(a, b).allclose(Tensor::from({2, 2}, {19, 22, 43, 50})));
}

TEST(GemmTest, IdentityIsNoop) {
  Tensor a = testing::random_tensor({5, 5}, 11);
  Tensor eye({5, 5});
  for (int64_t i = 0; i < 5; ++i) eye[i * 5 + i] = 1.0f;
  EXPECT_TRUE(matmul(a, eye).allclose(a, 1e-5f));
  EXPECT_TRUE(matmul(eye, a).allclose(a, 1e-5f));
}

TEST(GemmTest, InnerDimMismatchThrows) {
  EXPECT_THROW(matmul(Tensor({2, 3}), Tensor({4, 2})), std::invalid_argument);
  EXPECT_THROW(matmul_nt(Tensor({2, 3}), Tensor({4, 4})), std::invalid_argument);
  EXPECT_THROW(matmul_tn(Tensor({3, 2}), Tensor({4, 4})), std::invalid_argument);
  EXPECT_THROW(matmul(Tensor({6}), Tensor({6})), std::invalid_argument);
}

TEST(GemmTest, AccumulateFlag) {
  Tensor a = Tensor::from({1, 2}, {1, 1});
  Tensor b = Tensor::from({2, 1}, {2, 3});
  Tensor c({1, 1});
  c[0] = 100.0f;
  gemm(a.data(), b.data(), c.data(), 1, 2, 1, /*accumulate=*/true);
  EXPECT_FLOAT_EQ(c[0], 105.0f);
  gemm(a.data(), b.data(), c.data(), 1, 2, 1, /*accumulate=*/false);
  EXPECT_FLOAT_EQ(c[0], 5.0f);
}

class GemmShapeTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapeTest, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Tensor a = testing::random_tensor({m, k}, static_cast<uint64_t>(m * 100 + k));
  Tensor b = testing::random_tensor({k, n}, static_cast<uint64_t>(k * 100 + n));
  EXPECT_TRUE(matmul(a, b).allclose(naive_matmul(a, b), 1e-3f));
}

TEST_P(GemmShapeTest, VariantsAgree) {
  const auto [m, k, n] = GetParam();
  Tensor a = testing::random_tensor({m, k}, 1);
  Tensor b = testing::random_tensor({k, n}, 2);
  const Tensor want = matmul(a, b);
  // A * B == A *_nt (B^T) == (A^T) *_tn B
  Tensor bt({n, k});
  for (int64_t i = 0; i < k; ++i) {
    for (int64_t j = 0; j < n; ++j) bt[j * k + i] = b[i * n + j];
  }
  EXPECT_TRUE(matmul_nt(a, bt).allclose(want, 1e-3f));
  Tensor at({k, m});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < k; ++j) at[j * m + i] = a[i * k + j];
  }
  EXPECT_TRUE(matmul_tn(at, b).allclose(want, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmShapeTest,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{3, 5, 2},
                                           std::tuple{8, 8, 8}, std::tuple{17, 31, 13},
                                           std::tuple{64, 150, 33}, std::tuple{2, 200, 2},
                                           std::tuple{129, 7, 5}));

}  // namespace
}  // namespace capr
