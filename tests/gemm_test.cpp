#include "tensor/gemm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "test_util.h"

namespace capr {
namespace {

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
      c[i * n + j] = static_cast<float>(acc);
    }
  }
  return c;
}

TEST(GemmTest, SmallKnownProduct) {
  Tensor a = Tensor::from({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::from({2, 2}, {5, 6, 7, 8});
  EXPECT_TRUE(matmul(a, b).allclose(Tensor::from({2, 2}, {19, 22, 43, 50})));
}

TEST(GemmTest, IdentityIsNoop) {
  Tensor a = testing::random_tensor({5, 5}, 11);
  Tensor eye({5, 5});
  for (int64_t i = 0; i < 5; ++i) eye[i * 5 + i] = 1.0f;
  EXPECT_TRUE(matmul(a, eye).allclose(a, 1e-5f));
  EXPECT_TRUE(matmul(eye, a).allclose(a, 1e-5f));
}

TEST(GemmTest, InnerDimMismatchThrows) {
  EXPECT_THROW(matmul(Tensor({2, 3}), Tensor({4, 2})), std::invalid_argument);
  EXPECT_THROW(matmul_nt(Tensor({2, 3}), Tensor({4, 4})), std::invalid_argument);
  EXPECT_THROW(matmul_tn(Tensor({3, 2}), Tensor({4, 4})), std::invalid_argument);
  EXPECT_THROW(matmul(Tensor({6}), Tensor({6})), std::invalid_argument);
}

TEST(GemmTest, AccumulateFlag) {
  Tensor a = Tensor::from({1, 2}, {1, 1});
  Tensor b = Tensor::from({2, 1}, {2, 3});
  Tensor c({1, 1});
  c[0] = 100.0f;
  gemm(a.data(), b.data(), c.data(), 1, 2, 1, /*accumulate=*/true);
  EXPECT_FLOAT_EQ(c[0], 105.0f);
  gemm(a.data(), b.data(), c.data(), 1, 2, 1, /*accumulate=*/false);
  EXPECT_FLOAT_EQ(c[0], 5.0f);
}

class GemmShapeTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapeTest, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  Tensor a = testing::random_tensor({m, k}, static_cast<uint64_t>(m * 100 + k));
  Tensor b = testing::random_tensor({k, n}, static_cast<uint64_t>(k * 100 + n));
  EXPECT_TRUE(matmul(a, b).allclose(naive_matmul(a, b), 1e-3f));
}

TEST_P(GemmShapeTest, VariantsAgree) {
  const auto [m, k, n] = GetParam();
  Tensor a = testing::random_tensor({m, k}, 1);
  Tensor b = testing::random_tensor({k, n}, 2);
  const Tensor want = matmul(a, b);
  // A * B == A *_nt (B^T) == (A^T) *_tn B
  Tensor bt({n, k});
  for (int64_t i = 0; i < k; ++i) {
    for (int64_t j = 0; j < n; ++j) bt[j * k + i] = b[i * n + j];
  }
  EXPECT_TRUE(matmul_nt(a, bt).allclose(want, 1e-3f));
  Tensor at({k, m});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < k; ++j) at[j * m + i] = a[i * k + j];
  }
  EXPECT_TRUE(matmul_tn(at, b).allclose(want, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmShapeTest,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{3, 5, 2},
                                           std::tuple{8, 8, 8}, std::tuple{17, 31, 13},
                                           std::tuple{64, 150, 33}, std::tuple{2, 200, 2},
                                           std::tuple{129, 7, 5}));

// Pins the documented zero-skip semantics (gemm.h): exact zeros in A are
// STRONG zeros — they annihilate NaN/Inf in B instead of producing NaN
// via IEEE 0*Inf — because pruned/masked weights are exact zeros and must
// fully silence whatever flows through them. Nonzero entries propagate
// NaN/Inf normally. A regression here means the fast path changed
// observable numerics, not just speed.
TEST(GemmNanSemanticsTest, ZeroInAAnnihilatesNanAndInfInB) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  // Row 0 of A is all zeros: its output row must be exactly 0 even though
  // every element of B is non-finite. Row 1 mixes a zero against the NaN
  // column with a nonzero against the Inf column.
  Tensor a = Tensor::from({2, 2}, {0.0f, 0.0f, 0.0f, 2.0f});
  Tensor b = Tensor::from({2, 2}, {nan, inf, 1.0f, 3.0f});
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c[0], 0.0f);
  EXPECT_FLOAT_EQ(c[1], 0.0f);
  EXPECT_FLOAT_EQ(c[2], 2.0f);  // 0*nan skipped + 2*1
  EXPECT_FLOAT_EQ(c[3], 6.0f);  // 0*inf skipped + 2*3
}

TEST(GemmNanSemanticsTest, NonzeroInAPropagatesNanAndInf) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  Tensor a = Tensor::from({1, 2}, {1.0f, 0.0f});
  Tensor b = Tensor::from({2, 2}, {nan, inf, 5.0f, 5.0f});
  const Tensor c = matmul(a, b);
  EXPECT_TRUE(std::isnan(c[0]));
  EXPECT_TRUE(std::isinf(c[1]));
}

TEST(GemmNanSemanticsTest, MatmulTnSharesTheStrongZeroRule) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  // matmul_tn skips on A^T's zeros the same way (rank-1 update form).
  Tensor at = Tensor::from({1, 2}, {0.0f, 1.0f});  // A^T: k=1, m=2
  Tensor b = Tensor::from({1, 1}, {nan});
  const Tensor c = matmul_tn(at, b);
  EXPECT_FLOAT_EQ(c[0], 0.0f);     // zero row of A^T silences the NaN
  EXPECT_TRUE(std::isnan(c[1]));   // nonzero row propagates it
}

TEST(GemmNanSemanticsTest, StrongZeroHoldsInsideTheBlockedLoop) {
  // Exercise the K-blocked path (K > 128): a zero A row over a B full of
  // NaN must still produce exact zeros after crossing block boundaries.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const int64_t k = 300;
  Tensor a({1, k});                 // all zeros
  Tensor b({k, 2}, nan);
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c[0], 0.0f);
  EXPECT_FLOAT_EQ(c[1], 0.0f);
}

}  // namespace
}  // namespace capr
