// Shared helpers for the test suite.
#pragma once

#include <cmath>
#include <functional>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace capr::testing {

/// Central finite difference d f / d x[i].
inline float numerical_grad(const std::function<float()>& f, float& x, float eps = 1e-3f) {
  const float saved = x;
  x = saved + eps;
  const float fp = f();
  x = saved - eps;
  const float fm = f();
  x = saved;
  return (fp - fm) / (2.0f * eps);
}

/// Max absolute difference between two tensors (shapes must match).
inline float max_abs_diff(const Tensor& a, const Tensor& b) {
  float m = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const float d = std::fabs(a[i] - b[i]);
    m = d > m ? d : m;
  }
  return m;
}

/// Relative error tolerant of tiny denominators.
inline float rel_err(float got, float want, float floor = 1e-4f) {
  return std::fabs(got - want) / std::max(std::fabs(want), floor);
}

inline Tensor random_tensor(Shape shape, uint64_t seed, float lo = -1.0f, float hi = 1.0f) {
  Tensor t(std::move(shape));
  Rng rng(seed);
  rng.fill_uniform(t, lo, hi);
  return t;
}

}  // namespace capr::testing
