// Shared helpers for the test suite.
//
// The numeric primitives (numerical_grad, max_abs_diff, rel_err,
// random_tensor, allclose_report) live in the capr_testutil library
// (src/testutil/testutil.h) so that src/verify can use them too; this
// header re-exports them and adds the GTest adapters.
#pragma once

#include <gtest/gtest.h>

#include "testutil/testutil.h"

namespace capr::testing {

/// GTest-friendly element-wise comparison: on failure the assertion
/// message names the flat index and both values of the worst mismatch.
///
///   EXPECT_TRUE(expect_allclose(got, want));
///   EXPECT_TRUE(expect_allclose(got, want, 1e-4f, 1e-3f)) << "context";
inline ::testing::AssertionResult expect_allclose(const Tensor& got, const Tensor& want,
                                                  float atol = 1e-5f, float rtol = 0.0f) {
  const AllcloseReport r = allclose_report(got, want, atol, rtol);
  if (r.ok) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << r.message;
}

}  // namespace capr::testing
