// Structural surgery correctness: removing filters must keep the model
// shape-legal, and removing *dead* filters must leave outputs unchanged.
#include "core/surgeon.h"

#include <gtest/gtest.h>

#include "models/builders.h"
#include "test_util.h"

namespace capr::core {
namespace {

models::BuildConfig tiny_cfg() {
  models::BuildConfig cfg;
  cfg.num_classes = 4;
  cfg.input_size = 8;
  cfg.width_mult = 0.25f;
  return cfg;
}

/// Silences filter `f` of unit `u`: zero conv weights and BN affine, and
/// make the BN running stats map the channel to exactly zero output.
void kill_filter(nn::Model& m, size_t u, int64_t f) {
  nn::PrunableUnit& unit = m.units[u];
  const int64_t fsz =
      unit.conv->in_channels() * unit.conv->kernel() * unit.conv->kernel();
  for (int64_t i = 0; i < fsz; ++i) unit.conv->weight().value[f * fsz + i] = 0.0f;
  if (unit.bn != nullptr) {
    unit.bn->gamma().value[f] = 0.0f;
    unit.bn->beta().value[f] = 0.0f;
    unit.bn->running_mean()[f] = 0.0f;
  }
}

TEST(SurgeryTest, PruningDeadFiltersPreservesLogitsExactly) {
  nn::Model m = models::make_tiny_cnn(tiny_cfg());
  const Tensor x = capr::testing::random_tensor({3, 3, 8, 8}, 80);
  kill_filter(m, 0, 1);
  kill_filter(m, 0, 3);
  kill_filter(m, 1, 0);
  const Tensor before = m.forward(x, false);
  remove_filters(m, 0, {1, 3});
  remove_filters(m, 1, {0});
  const Tensor after = m.forward(x, false);
  EXPECT_TRUE(after.allclose(before, 1e-5f));
}

TEST(SurgeryTest, VggChainPropagation) {
  nn::Model m = models::make_vgg16(tiny_cfg());
  const Tensor x = capr::testing::random_tensor({2, 3, 8, 8}, 81);
  // Kill and prune in the middle and at the last conv (linear consumer).
  kill_filter(m, 5, 2);
  kill_filter(m, 12, 0);
  const Tensor before = m.forward(x, false);
  remove_filters(m, 5, {2});
  remove_filters(m, 12, {0});
  const Tensor after = m.forward(x, false);
  EXPECT_TRUE(after.allclose(before, 1e-4f));
}

TEST(SurgeryTest, ResnetBlockPruningKeepsShortcutLegal) {
  nn::Model m = models::make_resnet20(tiny_cfg());
  const Tensor x = capr::testing::random_tensor({2, 3, 8, 8}, 82);
  kill_filter(m, 4, 1);
  const Tensor before = m.forward(x, false);
  remove_filters(m, 4, {1});
  const Tensor after = m.forward(x, false);
  EXPECT_TRUE(after.allclose(before, 1e-4f));
  // conv2 of the pruned block shrank its input, out stayed fixed.
  EXPECT_EQ(m.units[4].consumers[0].conv->out_channels(),
            m.units[4].consumers[0].conv->in_channels() + 1);
}

TEST(SurgeryTest, TrainingStillWorksAfterSurgery) {
  nn::Model m = models::make_resnet20(tiny_cfg());
  remove_filters(m, 0, {0});
  remove_filters(m, 8, {1, 2});
  const Tensor x = capr::testing::random_tensor({2, 3, 8, 8}, 83);
  const Tensor logits = m.forward(x, true);
  EXPECT_NO_THROW(m.backward(Tensor(logits.shape(), 0.05f)));
  for (nn::Param* p : m.params()) {
    EXPECT_EQ(p->value.shape(), p->grad.shape());
  }
}

TEST(SurgeryTest, ApplySelectionCountsRemovals) {
  nn::Model m = models::make_tiny_cnn(tiny_cfg());
  const int64_t before = total_prunable_filters(m);
  std::vector<UnitSelection> sel;
  sel.push_back({0, {0, 2}});
  sel.push_back({1, {1}});
  EXPECT_EQ(apply_selection(m, sel), 3);
  EXPECT_EQ(total_prunable_filters(m), before - 3);
}

TEST(SurgeryTest, ErrorsOnInvalidRequests) {
  nn::Model m = models::make_tiny_cnn(tiny_cfg());
  EXPECT_THROW(remove_filters(m, 99, {0}), std::out_of_range);
  EXPECT_THROW(remove_filters(m, 0, {1000}), std::out_of_range);
  // Removing everything is refused.
  std::vector<int64_t> all(static_cast<size_t>(m.units[0].conv->out_channels()));
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int64_t>(i);
  EXPECT_THROW(remove_filters(m, 0, all), std::invalid_argument);
  // Empty removal is a no-op.
  const int64_t n = total_prunable_filters(m);
  remove_filters(m, 0, {});
  EXPECT_EQ(total_prunable_filters(m), n);
}

TEST(SurgeryTest, StateDictReflectsNewShapes) {
  nn::Model m = models::make_tiny_cnn(tiny_cfg());
  remove_filters(m, 0, {0});
  const auto dict = m.state_dict();
  const auto& w = dict.at("conv0.weight");
  EXPECT_EQ(w.dim(0), m.units[0].conv->out_channels());
}

}  // namespace
}  // namespace capr::core
