#include "report/json.h"

#include <gtest/gtest.h>

namespace capr::report {
namespace {

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nnext"), "line\\nnext");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonValueTest, Scalars) {
  EXPECT_EQ(JsonValue::null().dump(), "null");
  EXPECT_EQ(JsonValue::boolean(true).dump(), "true");
  EXPECT_EQ(JsonValue::number(static_cast<int64_t>(42)).dump(), "42");
  EXPECT_EQ(JsonValue::number(0.5).dump(), "0.5");
  EXPECT_EQ(JsonValue::string("x").dump(), "\"x\"");
  EXPECT_EQ(JsonValue::number(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(JsonValueTest, Composition) {
  JsonValue obj = JsonValue::object();
  obj.set("name", JsonValue::string("vgg16"));
  JsonValue arr = JsonValue::array();
  arr.push_back(JsonValue::number(static_cast<int64_t>(1)));
  arr.push_back(JsonValue::number(static_cast<int64_t>(2)));
  obj.set("iters", std::move(arr));
  EXPECT_EQ(obj.dump(), "{\"name\":\"vgg16\",\"iters\":[1,2]}");
}

TEST(JsonValueTest, KindErrors) {
  JsonValue arr = JsonValue::array();
  EXPECT_THROW(arr.set("k", JsonValue::null()), std::logic_error);
  JsonValue obj = JsonValue::object();
  EXPECT_THROW(obj.push_back(JsonValue::null()), std::logic_error);
}

TEST(JsonSerializersTest, PruneRunResultRoundTripsKeys) {
  core::PruneRunResult res;
  res.original_accuracy = 0.9f;
  res.final_accuracy = 0.88f;
  res.report.params_before = 100;
  res.report.params_after = 40;
  res.report.flops_before = 1000;
  res.report.flops_after = 600;
  res.stop_reason = "max iterations reached";
  res.iterations.push_back({0, 5, 20, 0.89f, 70, 800});
  const std::string out = to_json(res).dump();
  EXPECT_NE(out.find("\"pruning_ratio\":0.6"), std::string::npos);
  EXPECT_NE(out.find("\"flops_reduction\":0.4"), std::string::npos);
  EXPECT_NE(out.find("\"stop_reason\":\"max iterations reached\""), std::string::npos);
  EXPECT_NE(out.find("\"filters_removed\":5"), std::string::npos);
}

TEST(JsonSerializersTest, ModelSimSerialises) {
  hw::ModelSim sim;
  sim.total_cycles = 1000;
  sim.total_macs = 5000;
  sim.layers.push_back({"conv0", "gemm", 5000, 1000, 0.5, 64, 32, 1.5});
  const std::string out = to_json(sim).dump();
  EXPECT_NE(out.find("\"total_cycles\":1000"), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"conv0\""), std::string::npos);
  EXPECT_NE(out.find("\"utilization\":0.5"), std::string::npos);
}

}  // namespace
}  // namespace capr::report
