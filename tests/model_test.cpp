#include <gtest/gtest.h>

#include <set>

#include "models/builders.h"
#include "tensor/serialize.h"
#include "test_util.h"

namespace capr::models {
namespace {

using nn::Model;

BuildConfig tiny_cfg() {
  BuildConfig cfg;
  cfg.num_classes = 4;
  cfg.input_size = 8;
  cfg.width_mult = 0.25f;
  return cfg;
}

TEST(BuilderTest, ScaleChannelsFloorsAtFour) {
  EXPECT_EQ(scale_channels(64, 1.0f), 64);
  EXPECT_EQ(scale_channels(64, 0.25f), 16);
  EXPECT_EQ(scale_channels(16, 0.1f), 4);
  EXPECT_EQ(scale_channels(4, 0.01f), 4);
}

TEST(BuilderTest, UnknownArchThrows) {
  EXPECT_THROW(make_model("alexnet", tiny_cfg()), std::invalid_argument);
}

class ArchSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(ArchSweep, ForwardProducesLogits) {
  Model m = make_model(GetParam(), tiny_cfg());
  EXPECT_EQ(m.arch, GetParam());
  const Tensor x = capr::testing::random_tensor({2, 3, 8, 8}, 70);
  const Tensor logits = m.forward(x, false);
  EXPECT_EQ(logits.shape(), (Shape{2, 4}));
  for (int64_t i = 0; i < logits.numel(); ++i) EXPECT_FALSE(std::isnan(logits[i]));
}

TEST_P(ArchSweep, BackwardRuns) {
  Model m = make_model(GetParam(), tiny_cfg());
  const Tensor x = capr::testing::random_tensor({2, 3, 8, 8}, 71);
  const Tensor logits = m.forward(x, true);
  EXPECT_NO_THROW(m.backward(Tensor(logits.shape(), 0.1f)));
}

TEST_P(ArchSweep, LayerNamesAreUnique) {
  Model m = make_model(GetParam(), tiny_cfg());
  std::set<std::string> names;
  m.net->visit([&names](nn::Layer& l) {
    if (!l.params().empty()) {
      EXPECT_FALSE(l.name().empty()) << l.kind() << " missing a name";
      EXPECT_TRUE(names.insert(l.name()).second) << "duplicate name " << l.name();
    }
  });
}

TEST_P(ArchSweep, UnitMetadataIsConsistent) {
  Model m = make_model(GetParam(), tiny_cfg());
  EXPECT_FALSE(m.units.empty());
  for (const nn::PrunableUnit& u : m.units) {
    ASSERT_NE(u.conv, nullptr);
    ASSERT_NE(u.score_point, nullptr);
    if (u.bn != nullptr) {
      EXPECT_EQ(u.bn->channels(), u.conv->out_channels());
    }
    ASSERT_FALSE(u.consumers.empty());
    for (const nn::ConsumerRef& c : u.consumers) {
      if (c.conv != nullptr) {
        EXPECT_EQ(c.conv->in_channels(), u.conv->out_channels());
      } else {
        ASSERT_NE(c.linear, nullptr);
        EXPECT_EQ(c.linear->in_features(), u.conv->out_channels() * c.spatial);
      }
    }
  }
}

TEST_P(ArchSweep, StateDictRoundTripsThroughDisk) {
  BuildConfig cfg = tiny_cfg();
  Model m = make_model(GetParam(), cfg);
  const Tensor x = capr::testing::random_tensor({1, 3, 8, 8}, 72);
  const Tensor logits_before = m.forward(x, false);

  const std::string path = ::testing::TempDir() + "capr_" + GetParam() + ".ckpt";
  save_tensor_map(path, m.state_dict());

  cfg.init_seed = 999;  // different random init
  Model fresh = make_model(GetParam(), cfg);
  EXPECT_FALSE(fresh.forward(x, false).allclose(logits_before, 1e-4f));
  fresh.load_state_dict(load_tensor_map(path));
  EXPECT_TRUE(fresh.forward(x, false).allclose(logits_before, 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(Archs, ArchSweep,
                         ::testing::Values("tiny", "vgg11", "vgg13", "vgg16", "vgg19", "resnet20",
                                           "resnet32", "resnet44", "resnet56"));

TEST(BuilderTest, Vgg16HasThirteenPrunableConvs) {
  const Model m = make_vgg16(tiny_cfg());
  EXPECT_EQ(m.units.size(), 13u);
}

TEST(BuilderTest, Vgg19HasSixteenPrunableConvs) {
  const Model m = make_vgg19(tiny_cfg());
  EXPECT_EQ(m.units.size(), 16u);
}

TEST(BuilderTest, ResnetUnitCounts) {
  EXPECT_EQ(make_resnet20(tiny_cfg()).units.size(), 9u);   // 3 stages x 3 blocks
  EXPECT_EQ(make_resnet56(tiny_cfg()).units.size(), 27u);  // 3 stages x 9 blocks
}

TEST(BuilderTest, FullWidthShapesMatchPaperArchitecture) {
  BuildConfig cfg;
  cfg.num_classes = 10;
  cfg.input_size = 32;
  cfg.width_mult = 1.0f;
  Model vgg = make_vgg16(cfg);
  EXPECT_EQ(vgg.units.front().conv->out_channels(), 64);
  EXPECT_EQ(vgg.units.back().conv->out_channels(), 512);
  Model rn = make_resnet56(cfg);
  EXPECT_EQ(rn.units.front().conv->out_channels(), 16);
  EXPECT_EQ(rn.units.back().conv->out_channels(), 64);
}

TEST(BuilderTest, LoadStateDictRejectsMismatch) {
  Model m = make_tiny_cnn(tiny_cfg());
  auto dict = m.state_dict();
  dict.erase(dict.begin());
  EXPECT_THROW(m.load_state_dict(dict), std::runtime_error);
  auto dict2 = m.state_dict();
  dict2["bogus.key"] = Tensor({1});
  EXPECT_THROW(m.load_state_dict(dict2), std::runtime_error);
}

TEST(BuilderTest, FindUnit) {
  Model m = make_tiny_cnn(tiny_cfg());
  EXPECT_EQ(m.find_unit(m.units[1].conv), &m.units[1]);
  nn::Conv2d other(1, 1, 1, 1, 0, false);
  EXPECT_EQ(m.find_unit(&other), nullptr);
}

}  // namespace
}  // namespace capr::models
