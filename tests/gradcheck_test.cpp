// Systematic gradcheck of every layer in src/nn and of the modified loss
// (paper Eq. 1-2), including the exact Toeplitz-form orthogonality
// gradient. These are the checks that keep Taylor importance scores
// (|a * dL/da|, Eq. 4) trustworthy: a silently wrong backward would skew
// filter ranking without failing any forward-value test.
#include "verify/gradcheck.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/modified_loss.h"
#include "data/synthetic.h"
#include "models/builders.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "test_util.h"

namespace capr::verify {
namespace {

void fill_params(nn::Layer& layer, uint64_t seed, float lo = -0.6f, float hi = 0.6f) {
  Rng rng(seed);
  for (nn::Param* p : layer.params()) rng.fill_uniform(p->value, lo, hi);
}

void expect_ok(const GradcheckResult& r) {
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_LT(r.max_rel_error, 1e-2f) << "worst: " << r.worst.tensor << "[" << r.worst.index
                                    << "] analytic " << r.worst.analytic << " numeric "
                                    << r.worst.numeric;
  EXPECT_GT(r.checked, 0);
}

/// Input whose elements are all distinct with gaps far beyond the
/// finite-difference step, so pooling argmaxes cannot flip.
Tensor separated_input(const Shape& shape, uint64_t seed) {
  Tensor t(shape);
  std::vector<int64_t> order(static_cast<size_t>(t.numel()));
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  rng.shuffle(order);
  for (int64_t i = 0; i < t.numel(); ++i) {
    t[i] = 0.05f * static_cast<float>(order[static_cast<size_t>(i)]) - 0.02f;
  }
  return t;
}

TEST(GradcheckLayerTest, Conv2dStridePaddingBiasVariants) {
  struct Cfg {
    int64_t cin, cout, k, stride, pad;
    bool bias;
    Shape in;
  };
  const Cfg cfgs[] = {
      {2, 3, 3, 1, 1, true, {2, 2, 5, 5}},
      {1, 2, 3, 2, 1, false, {2, 1, 6, 6}},
      {3, 4, 1, 1, 0, true, {2, 3, 4, 4}},
      {2, 2, 2, 2, 0, false, {1, 2, 6, 6}},
  };
  int i = 0;
  for (const Cfg& c : cfgs) {
    nn::Conv2d conv(c.cin, c.cout, c.k, c.stride, c.pad, c.bias);
    fill_params(conv, 100 + static_cast<uint64_t>(i));
    GradcheckOptions opts;
    opts.seed = 200 + static_cast<uint64_t>(i++);
    expect_ok(gradcheck(conv, c.in, opts));
  }
}

TEST(GradcheckLayerTest, LinearWithAndWithoutBias) {
  nn::Linear with_bias(6, 4, true);
  fill_params(with_bias, 7);
  expect_ok(gradcheck(with_bias, Shape{3, 6}));

  nn::Linear no_bias(5, 3, false);
  fill_params(no_bias, 8);
  expect_ok(gradcheck(no_bias, Shape{4, 5}));
}

TEST(GradcheckLayerTest, Flatten) {
  nn::Flatten flatten;
  expect_ok(gradcheck(flatten, Shape{2, 3, 4, 4}));
}

TEST(GradcheckLayerTest, BatchNormTrainingMode) {
  nn::BatchNorm2d bn(3);
  Rng rng(21);
  rng.fill_uniform(bn.gamma().value, 0.5f, 1.5f);
  rng.fill_uniform(bn.beta().value, -0.5f, 0.5f);
  GradcheckOptions opts;
  opts.training = true;
  // Training-mode BN input gradients are tiny (mean subtraction cancels
  // most of each perturbation), while the objective's fp32 forward has
  // ULP-level noise. A larger step and denominator floor keep the check
  // above that noise without loosening the relative tolerance.
  opts.eps = 3e-2f;
  opts.abs_floor = 5e-3f;
  expect_ok(gradcheck(bn, Shape{4, 3, 5, 5}, opts));
}

TEST(GradcheckLayerTest, BatchNormEvalModeUsesRunningStatsAsConstants) {
  nn::BatchNorm2d bn(3);
  Rng rng(22);
  rng.fill_uniform(bn.gamma().value, 0.5f, 1.5f);
  rng.fill_uniform(bn.beta().value, -0.5f, 0.5f);
  rng.fill_uniform(bn.running_mean(), -0.5f, 0.5f);
  rng.fill_uniform(bn.running_var(), 0.5f, 1.5f);
  GradcheckOptions opts;
  opts.training = false;  // the mode importance scoring differentiates in
  expect_ok(gradcheck(bn, Shape{3, 3, 4, 4}, opts));
}

TEST(GradcheckLayerTest, ReLUAwayFromKink) {
  nn::ReLU relu;
  GradcheckOptions opts;
  opts.input_min_abs = 0.05f;  // central differences must not straddle 0
  expect_ok(gradcheck(relu, Shape{2, 3, 4, 4}, opts));
}

TEST(GradcheckLayerTest, LeakyReLUAwayFromKink) {
  nn::LeakyReLU leaky(0.1f);
  GradcheckOptions opts;
  opts.input_min_abs = 0.05f;
  expect_ok(gradcheck(leaky, Shape{2, 3, 4, 4}, opts));
}

TEST(GradcheckLayerTest, MaxPoolOnSeparatedInput) {
  nn::MaxPool2d pool(2);
  expect_ok(gradcheck(pool, separated_input({2, 2, 6, 6}, 31)));
  nn::MaxPool2d strided(3, 2);
  expect_ok(gradcheck(strided, separated_input({1, 2, 7, 7}, 32)));
}

TEST(GradcheckLayerTest, AvgPools) {
  nn::AvgPool2d avg(2);
  expect_ok(gradcheck(avg, Shape{2, 3, 6, 6}));
  nn::GlobalAvgPool gap;
  expect_ok(gradcheck(gap, Shape{2, 4, 5, 5}));
}

TEST(GradcheckLayerTest, DropoutInEvalModeIsIdentity) {
  nn::Dropout dropout(0.5f);
  GradcheckOptions opts;
  opts.training = false;  // train-mode dropout redraws its mask per forward
  expect_ok(gradcheck(dropout, Shape{3, 4, 2, 2}, opts));
}

TEST(GradcheckLayerTest, SequentialConvBnReluComposite) {
  nn::Sequential seq;
  auto* conv = seq.add(std::make_unique<nn::Conv2d>(2, 3, 3, 1, 1, false));
  auto* bn = seq.add(std::make_unique<nn::BatchNorm2d>(3));
  seq.add(std::make_unique<nn::ReLU>());
  fill_params(*conv, 41);
  Rng rng(42);
  rng.fill_uniform(bn->gamma().value, 0.5f, 1.5f);
  rng.fill_uniform(bn->beta().value, -0.5f, 0.5f);
  GradcheckOptions opts;
  opts.seed = 55;
  // Composite-specific noise the per-layer checks never see: BN couples
  // every input element to ALL downstream ReLU pre-activations, so some
  // probe always pushes one across its kink, and that error is bounded
  // by the local slope change — it does NOT shrink with eps. The strict
  // 1e-2 guarantee lives in the per-layer tests above; this test exists
  // to catch composition bugs, which produce O(1) relative errors.
  opts.rel_tol = 0.1f;
  opts.abs_floor = 5e-3f;
  const GradcheckResult r = gradcheck(seq, Shape{2, 2, 5, 5}, opts);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_LT(r.max_rel_error, 0.1f)
      << "worst: " << r.worst.tensor << "[" << r.worst.index << "] analytic " << r.worst.analytic
      << " numeric " << r.worst.numeric;
}

// ---- modified loss: L = L_CE + l1*||W||_1 + l2*||KK^T - I||_F^2 ------------

TEST(GradcheckModifiedLossTest, FilterMatrixFormPenaltyGradient) {
  models::BuildConfig mcfg;
  mcfg.num_classes = 3;
  mcfg.input_size = 8;
  mcfg.width_mult = 0.25f;
  nn::Model model = models::make_tiny_cnn(mcfg);

  core::ModifiedLossConfig cfg;
  cfg.lambda1 = 1e-2f;  // scaled up so both terms are visible to fp32 diffs
  cfg.lambda2 = 1e-2f;
  cfg.orth_form = core::OrthForm::kFilterMatrix;
  core::ModifiedLoss reg(cfg);

  GradcheckOptions opts;
  // reg.apply returns a float: the penalty value is quantised at
  // ULP(|penalty|), so the step must be large enough that the true
  // difference dominates that quantisation. The L1 kink then needs
  // weights pushed out past eps.
  opts.eps = 1e-2f;
  opts.input_min_abs = 2e-2f;
  opts.max_checks = 60;
  expect_ok(gradcheck_regularizer(model, reg, opts));
}

TEST(GradcheckModifiedLossTest, ToeplitzFormPenaltyGradient) {
  // Hand-built single-conv model: the dense Toeplitz operator is
  // O((Cout*OH*OW)^2), so the geometry stays tiny.
  nn::Model model;
  model.net = std::make_unique<nn::Sequential>();
  auto* conv = model.net->add(std::make_unique<nn::Conv2d>(1, 2, 2, 1, 0, false));
  conv->set_name("conv0");
  fill_params(*conv, 51);

  core::ModifiedLossConfig cfg;
  cfg.lambda1 = 1e-2f;
  cfg.lambda2 = 1e-2f;
  cfg.orth_form = core::OrthForm::kToeplitz;
  cfg.toeplitz_h = 4;
  cfg.toeplitz_w = 4;
  core::ModifiedLoss reg(cfg);

  GradcheckOptions opts;
  opts.input_min_abs = 5e-3f;
  expect_ok(gradcheck_regularizer(model, reg, opts));
}

TEST(GradcheckModifiedLossTest, ToeplitzPenaltyGradientDirect) {
  nn::Conv2d conv(2, 2, 3, 1, 1, false);
  fill_params(conv, 61);
  // Analytic gradient, unscaled.
  Tensor analytic(conv.weight().value.shape());
  core::orth_penalty_toeplitz(conv, 5, 5, &analytic, 1.0f);
  const auto f = [&]() { return core::orth_penalty_toeplitz(conv, 5, 5); };
  GradcheckOptions opts;
  // The penalty is O(100) while eps stays 1e-3: loosen the floor so
  // round-off on the big objective doesn't read as gradient error.
  opts.abs_floor = 0.05f;
  const GradcheckResult r = check_grad(f, conv.weight().value, analytic, opts, "conv.weight");
  expect_ok(r);
}

TEST(GradcheckModifiedLossTest, FullTrainingGradientThroughNetwork) {
  // End-to-end: d(L_CE + penalties)/dW for every parameter of the tiny
  // CNN, against finite differences of the complete scalar loss. This is
  // the exact gradient the trainer descends and importance scoring reads.
  models::BuildConfig mcfg;
  mcfg.num_classes = 3;
  mcfg.input_size = 6;
  mcfg.width_mult = 0.25f;
  nn::Model model = models::make_tiny_cnn(mcfg);

  data::SyntheticCifarConfig dcfg;
  dcfg.num_classes = 3;
  dcfg.train_per_class = 2;
  dcfg.test_per_class = 1;
  dcfg.image_size = 6;
  const data::SyntheticCifar data = data::make_synthetic_cifar(dcfg);
  const data::Batch batch = data.train.slice(0, 4);

  core::ModifiedLossConfig cfg;
  cfg.lambda1 = 1e-2f;
  cfg.lambda2 = 1e-2f;
  core::ModifiedLoss reg(cfg);

  GradcheckOptions opts;
  opts.max_checks = 20;
  // End-to-end tolerances: perturbing an early-layer weight moves EVERY
  // downstream ReLU/MaxPool pre-activation, so some probes inevitably
  // straddle a kink; and the fp32 loss is quantised at ULP(|L|). The
  // layer-level suites above pin each backward at 1e-2 — this test exists
  // to catch wiring bugs (missed terms, wrong lambda, double-counted
  // grads), which show up as O(1) relative errors.
  opts.eps = 2e-3f;
  opts.input_min_abs = 5e-3f;  // keep weights off the L1 kink
  opts.abs_floor = 2e-2f;
  opts.rel_tol = 0.25f;
  const std::vector<nn::Param*> params = model.params();
  for (nn::Param* p : params) push_away_from_zero(p->value, opts.input_min_abs);

  // Analytic pass.
  for (nn::Param* p : params) p->zero_grad();
  nn::SoftmaxCrossEntropy ce;
  ce.forward(model.forward(batch.images, /*training=*/false), batch.labels);
  model.backward(ce.backward());
  reg.apply(model);
  std::vector<Tensor> analytic;
  analytic.reserve(params.size());
  for (nn::Param* p : params) analytic.push_back(p->grad);

  const auto loss = [&]() {
    nn::SoftmaxCrossEntropy probe;
    const float data_loss = probe.forward(model.forward(batch.images, false), batch.labels);
    return data_loss + reg.apply(model);
  };
  GradcheckResult total;
  for (size_t i = 0; i < params.size(); ++i) {
    total.merge(check_grad(loss, params[i]->value, analytic[i], opts,
                           params[i]->name.empty() ? "param" : params[i]->name));
  }
  EXPECT_TRUE(total.ok) << total.error;
  EXPECT_LT(total.max_rel_error, 0.25f)
      << "worst: " << total.worst.tensor << "[" << total.worst.index << "] analytic "
      << total.worst.analytic << " numeric " << total.worst.numeric;
  EXPECT_GT(total.checked, 0);
}

}  // namespace
}  // namespace capr::verify
